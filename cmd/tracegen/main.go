// Command tracegen is the workbench for workload traces: it generates traces
// from any registered scenario, imports external cluster logs (Philly- and
// Alibaba-style CSV), calibrates scenarios against traces, validates and
// describes trace files, and lists the scenario library.
//
//	tracegen generate -scenario diurnal -apps 100 -out trace.json
//	tracegen list
//	tracegen import -in cluster_log.csv -format auto -out trace.json
//	tracegen fit -in trace.json -out fitted.json
//	tracegen validate trace.json
//	tracegen describe trace.json
//	tracegen describe heavy-tailed
//	tracegen describe fitted.json
//
// Invoked with flags but no subcommand, it behaves like "generate", keeping
// the original tracegen CLI working.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"themis"
)

func main() {
	args := os.Args[1:]
	cmd := "generate"
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "generate":
		err = runGenerate(args)
	case "list":
		err = runList()
	case "import":
		err = runImport(args)
	case "fit":
		err = runFit(args)
	case "validate":
		err = runValidate(args)
	case "describe":
		err = runDescribe(args)
	case "help", "-h", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown subcommand %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `usage: tracegen <subcommand> [flags]

subcommands:
  generate   generate a trace from a registered scenario (default)
  list       list the registered scenarios
  import     normalise an external cluster log (philly/alibaba CSV) into a trace
  fit        calibrate a scenario against a trace (ScenarioConfig JSON + fit report)
  validate   check trace files against the format contract
  describe   summarise a trace file, a registered scenario or a fit report

run "tracegen <subcommand> -h" for flags.
`)
}

func runGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	var (
		scenario   = fs.String("scenario", "paper-mix", "registered scenario to generate from (see: tracegen list)")
		numApps    = fs.Int("apps", 0, "number of applications (0: scenario default)")
		seed       = fs.Int64("seed", 1, "generation seed")
		contention = fs.Float64("contention", 0, "contention factor scaling the arrival rate (0: scenario default)")
		scale      = fs.Float64("scale", 0, "job duration scale factor (0: scenario default)")
		network    = fs.Float64("network", -1, "fraction of network-intensive apps (negative: scenario default)")
		interArr   = fs.Float64("interarrival", 0, "mean inter-arrival time in minutes (0: scenario default)")
		out        = fs.String("out", "", "output trace file (default: stdout)")
		encoding   = fs.String("encoding", "json", "output encoding: json or binary (compact v3 container)")
		summary    = fs.Bool("summary", true, "print trace summary statistics to stderr")
		name       = fs.String("name", "", "trace name recorded in the file (default: scenario name)")
	)
	fs.Parse(args)

	params := themis.ScenarioParams{
		Seed:             *seed,
		NumApps:          *numApps,
		ContentionFactor: *contention,
		DurationScale:    *scale,
		MeanInterArrival: *interArr,
	}
	if *network >= 0 {
		params.NetworkFraction = network
	}
	apps, err := themis.GenerateScenario(*scenario, params)
	if err != nil {
		return err
	}
	traceName := *name
	if traceName == "" {
		traceName = *scenario
	}
	tr := themis.NewTrace(traceName, apps)
	if *summary {
		printStats(themis.SummarizeWorkload(apps))
	}
	return writeTrace(tr, *out, *encoding)
}

func runList() error {
	for _, name := range themis.Scenarios() {
		desc, err := themis.DescribeScenario(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %s\n", name, desc)
	}
	return nil
}

func runImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	var (
		in          = fs.String("in", "", "input file (default: stdin)")
		format      = fs.String("format", "auto", "input format: auto, json, binary, philly or alibaba")
		out         = fs.String("out", "", "output trace file (default: stdout)")
		encoding    = fs.String("encoding", "json", "output encoding: json or binary (compact v3 container)")
		name        = fs.String("name", "", "trace name recorded in the file (default: format name)")
		timeScale   = fs.Float64("timescale", 0, "minutes per input time unit (0: format convention)")
		keepAll     = fs.Bool("keep-noncompleted", false, "keep failed/killed rows instead of dropping them")
		maxApps     = fs.Int("max-apps", 0, "cap the number of imported apps (0: all)")
		sorted      = fs.Bool("sorted", false, "assert input rows are sorted by submit/start time (streams grouped formats in O(max-apps) memory)")
		model       = fs.String("model", "", "stamp every app with this model family")
		profile     = fs.String("placement-profile", "", "stamp every app with a v2 placement block naming this profile")
		minPerMach  = fs.Int("min-gpus-per-machine", 0, "placement block: per-machine GPU floor for every job (0: none)")
		maxMachines = fs.Int("max-machines", 0, "placement block: machine-spread cap for every job (0: none)")
		progress    = fs.Bool("progress", false, "report streaming-import progress to stderr")
		summary     = fs.Bool("summary", true, "print trace summary statistics to stderr")
	)
	fs.Parse(args)

	opts := themis.ImportOptions{
		Name:             *name,
		TimeScale:        *timeScale,
		KeepNonCompleted: *keepAll,
		MaxApps:          *maxApps,
		SortedInput:      *sorted,
		Model:            *model,
	}
	if *profile != "" || *minPerMach != 0 || *maxMachines != 0 {
		opts.Placement = &themis.PlacementSpec{
			Profile:           *profile,
			MinGPUsPerMachine: *minPerMach,
			MaxMachines:       *maxMachines,
		}
	}
	var onProgress func(themis.ImportProgress)
	if *progress {
		onProgress = func(p themis.ImportProgress) {
			fmt.Fprintf(os.Stderr, "import: %s %d rows, %d apps, %.1f MB%s\n",
				p.Format, p.Rows, p.Kept, float64(p.Bytes)/(1<<20), doneSuffix(p.Done))
		}
	}
	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	tr, err := themis.ImportTraceStream(src, themis.TraceFormat(*format), opts, onProgress)
	if err != nil {
		return err
	}
	if *summary {
		apps, err := tr.ToApps()
		if err != nil {
			return err
		}
		printStats(themis.SummarizeWorkload(apps))
	}
	return writeTrace(tr, *out, *encoding)
}

// runFit calibrates a scenario against a trace: any input Import accepts
// (native JSON or a Philly/Alibaba-style CSV) in, fitted ScenarioConfig JSON
// plus a human-readable fit-quality report out. The output file loads back
// through themis.LoadFitReport and themis-sim's -scenario flag.
func runFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "input trace file (default: stdin)")
		format    = fs.String("format", "auto", "input format: auto, json, philly or alibaba")
		out       = fs.String("out", "", "output fit-report file (default: stdout)")
		name      = fs.String("name", "", "provenance source name (default: the trace's name)")
		timeScale = fs.Float64("timescale", 0, "minutes per input time unit (0: format convention)")
		keepAll   = fs.Bool("keep-noncompleted", false, "keep failed/killed rows instead of dropping them")
		maxApps   = fs.Int("max-apps", 0, "cap the number of imported apps before fitting (0: all)")
		sorted    = fs.Bool("sorted", false, "assert input rows are sorted by submit/start time")
		report    = fs.Bool("report", true, "print the fit-quality report to stderr")
	)
	fs.Parse(args)

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	tr, err := themis.ImportTrace(src, themis.TraceFormat(*format), themis.ImportOptions{
		TimeScale:        *timeScale,
		KeepNonCompleted: *keepAll,
		MaxApps:          *maxApps,
		SortedInput:      *sorted,
	})
	if err != nil {
		return err
	}
	rep, err := themis.FitTrace(tr)
	if err != nil {
		return err
	}
	if *name != "" {
		rep.Provenance.Source = *name
	}
	rep.Provenance.FittedAt = time.Now().UTC().Format("2006-01-02")
	if *report {
		fmt.Fprint(os.Stderr, rep.Render())
	}
	if *out == "" {
		return rep.WriteJSON(os.Stdout)
	}
	if err := themis.SaveFitReport(*out, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	return nil
}

func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("validate needs at least one trace file")
	}
	failed := false
	for _, path := range fs.Args() {
		tr, info, err := themis.LoadTraceWithInfo(path)
		if err == nil {
			// Loading validates the format; materialising catches the rest
			// (unknown models fall back, bad jobs error).
			_, err = tr.ToApps()
		}
		if err != nil {
			failed = true
			fmt.Printf("%s: INVALID: %v\n", path, err)
			continue
		}
		// Report what is on disk — the detected encoding and the version the
		// file declares — not the in-memory version after upgrade.
		fmt.Printf("%s: OK (%s version %d, %d apps)\n", path, info.Encoding, info.WireVersion, len(tr.Apps))
	}
	if failed {
		return fmt.Errorf("validation failed")
	}
	return nil
}

func runDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "generation seed when describing a scenario")
	apps := fs.Int("apps", 0, "app count when describing a scenario (0: scenario default)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("describe needs one trace file, fit report or scenario name")
	}
	target := fs.Arg(0)

	// A registered scenario name describes the scenario (calibrated entries
	// additionally render their full fit report, so provenance is always
	// visible); a fit-report file renders the calibration; anything else is
	// a trace file.
	if desc, err := themis.DescribeScenario(target); err == nil {
		fmt.Printf("scenario %s: %s\n", target, desc)
		if rep, ok := themis.ScenarioFit(target); ok {
			fmt.Print(rep.Render())
		}
		generated, err := themis.GenerateScenario(target, themis.ScenarioParams{Seed: *seed, NumApps: *apps})
		if err != nil {
			return err
		}
		printStats(themis.SummarizeWorkload(generated))
		return nil
	}
	if rep, err := themis.LoadFitReport(target); err == nil {
		fmt.Printf("fit report %s\n", target)
		fmt.Print(rep.Render())
		generated, err := themis.ComposeWorkload(applyParams(rep.Config, *seed, *apps))
		if err != nil {
			return err
		}
		printStats(themis.SummarizeWorkload(generated))
		return nil
	}

	tr, err := themis.LoadTrace(target)
	if err != nil {
		return err
	}
	materialised, err := tr.ToApps()
	if err != nil {
		return err
	}
	fmt.Printf("trace %q (version %d)\n", tr.Name, tr.Version)
	printStats(themis.SummarizeWorkload(materialised))
	return nil
}

// applyParams overrides a fitted config's seed and app count for describe's
// sample generation.
func applyParams(cfg themis.ScenarioConfig, seed int64, apps int) themis.ScenarioConfig {
	if seed != 0 {
		cfg.Seed = seed
	}
	if apps != 0 {
		cfg.NumApps = apps
	}
	return cfg
}

func doneSuffix(done bool) string {
	if done {
		return " (done)"
	}
	return ""
}

func writeTrace(tr themis.Trace, out, encoding string) error {
	switch encoding {
	case "", "json":
		if out == "" {
			return tr.Write(os.Stdout)
		}
		if err := themis.SaveTrace(out, tr); err != nil {
			return err
		}
	case "binary":
		if out == "" {
			return themis.WriteTraceBinary(os.Stdout, tr)
		}
		if err := themis.SaveTraceBinary(out, tr); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown output encoding %q (want json or binary)", encoding)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return nil
}

func printStats(st themis.WorkloadStats) {
	fmt.Fprintf(os.Stderr, "apps                 %d\n", st.NumApps)
	fmt.Fprintf(os.Stderr, "jobs                 %d\n", st.NumJobs)
	fmt.Fprintf(os.Stderr, "jobs/app             min %d, median %.0f, max %d\n", st.JobsPerAppMin, st.JobsPerAppMedian, st.JobsPerAppMax)
	fmt.Fprintf(os.Stderr, "task duration        p50 %.1f min, p90 %.1f min, max %.1f min\n", st.TaskDurationP50, st.TaskDurationP90, st.TaskDurationMax)
	fmt.Fprintf(os.Stderr, "4-GPU gangs          %.0f%%\n", st.GangSize4Fraction*100)
	fmt.Fprintf(os.Stderr, "network-intensive    %.0f%% of apps\n", st.NetworkAppFraction*100)
	fmt.Fprintf(os.Stderr, "mean inter-arrival   %.1f min\n", st.MeanInterArrival)
	fmt.Fprintf(os.Stderr, "total serial work    %.0f GPU-min\n", st.TotalSerialWork)
}
