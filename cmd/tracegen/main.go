// Command tracegen generates synthetic workload traces matching the
// distributional properties of the enterprise trace the paper replays
// (jobs per app, gang sizes, task durations, Poisson arrivals), writes them
// as JSON, and prints summary statistics.
//
// Examples:
//
//	tracegen -apps 100 -out trace.json
//	tracegen -apps 50 -network 0.6 -contention 2 -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"themis"
)

func main() {
	var (
		numApps    = flag.Int("apps", 50, "number of applications")
		seed       = flag.Int64("seed", 1, "generation seed")
		network    = flag.Float64("network", 0.4, "fraction of network-intensive apps")
		contention = flag.Float64("contention", 1, "contention factor (scales arrival rate)")
		scale      = flag.Float64("scale", 1, "job duration scale factor")
		interArr   = flag.Float64("interarrival", 20, "mean inter-arrival time (minutes)")
		out        = flag.String("out", "", "output trace file (default: stdout)")
		summary    = flag.Bool("summary", true, "print trace summary statistics to stderr")
		name       = flag.String("name", "synthetic", "trace name recorded in the file")
	)
	flag.Parse()

	spec := themis.DefaultWorkloadSpec()
	spec.NumApps = *numApps
	spec.Seed = *seed
	spec.FractionNetworkIntensive = *network
	spec.ContentionFactor = *contention
	spec.DurationScale = *scale
	spec.MeanInterArrival = *interArr

	apps, err := themis.GenerateWorkload(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	tr := themis.NewTrace(*name, apps)

	if *summary {
		st := themis.SummarizeWorkload(apps)
		fmt.Fprintf(os.Stderr, "apps                 %d\n", st.NumApps)
		fmt.Fprintf(os.Stderr, "jobs                 %d\n", st.NumJobs)
		fmt.Fprintf(os.Stderr, "jobs/app             min %d, median %.0f, max %d\n", st.JobsPerAppMin, st.JobsPerAppMedian, st.JobsPerAppMax)
		fmt.Fprintf(os.Stderr, "task duration        p50 %.1f min, p90 %.1f min, max %.1f min\n", st.TaskDurationP50, st.TaskDurationP90, st.TaskDurationMax)
		fmt.Fprintf(os.Stderr, "4-GPU gangs          %.0f%%\n", st.GangSize4Fraction*100)
		fmt.Fprintf(os.Stderr, "network-intensive    %.0f%% of apps\n", st.NetworkAppFraction*100)
		fmt.Fprintf(os.Stderr, "mean inter-arrival   %.1f min\n", st.MeanInterArrival)
		fmt.Fprintf(os.Stderr, "total serial work    %.0f GPU-min\n", st.TotalSerialWork)
	}

	if *out == "" {
		if err := tr.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if err := themis.SaveTrace(*out, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
