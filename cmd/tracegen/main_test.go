package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"themis"
)

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	runErr := fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// testTraceFiles writes the same two-app trace in three wire forms — v1 JSON,
// v2 JSON and the v3 binary container — and returns their paths.
func testTraceFiles(t *testing.T) (v1, v2, v3 string) {
	t.Helper()
	dir := t.TempDir()

	v1 = filepath.Join(dir, "v1.json")
	v1JSON := `{
  "version": 1,
  "name": "cli-v1",
  "apps": [
    {"id": "a", "submit_time": 0, "model": "ResNet50",
     "jobs": [{"total_work": 40, "gang_size": 4, "quality": 0.5, "seed": 1}]},
    {"id": "b", "submit_time": 3, "model": "VGG16",
     "jobs": [{"total_work": 20, "gang_size": 2, "quality": 0.25, "seed": 2}]}
  ]
}`
	if err := os.WriteFile(v1, []byte(v1JSON), 0o644); err != nil {
		t.Fatal(err)
	}

	tr, err := themis.LoadTrace(v1)
	if err != nil {
		t.Fatal(err)
	}
	v2 = filepath.Join(dir, "v2.json")
	if err := themis.SaveTrace(v2, tr); err != nil {
		t.Fatal(err)
	}
	v3 = filepath.Join(dir, "v3.bin")
	if err := themis.SaveTraceBinary(v3, tr); err != nil {
		t.Fatal(err)
	}
	return v1, v2, v3
}

// TestValidateReportsWireVersion pins the validate fix: the report names the
// on-disk encoding and the version the file declares, not the in-memory
// version after the lossless upgrade (which made every JSON trace print as
// the current version regardless of what was actually stored).
func TestValidateReportsWireVersion(t *testing.T) {
	v1, v2, v3 := testTraceFiles(t)
	cases := []struct {
		path string
		want string
	}{
		{v1, "OK (json version 1, 2 apps)"},
		{v2, fmt.Sprintf("OK (json version %d, 2 apps)", themis.TraceFormatVersion)},
		{v3, "OK (binary version 3, 2 apps)"},
	}
	for _, c := range cases {
		out, err := captureStdout(t, func() error { return runValidate([]string{c.path}) })
		if err != nil {
			t.Errorf("validate %s: %v", c.path, err)
			continue
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("validate %s printed %q, want it to contain %q", c.path, strings.TrimSpace(out), c.want)
		}
	}
}

// TestValidateRejectsCorruptBinary: a truncated container must fail
// validation with a diagnostic, not crash or pass.
func TestValidateRejectsCorruptBinary(t *testing.T) {
	_, _, v3 := testTraceFiles(t)
	raw, err := os.ReadFile(v3)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "truncated.bin")
	if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error { return runValidate([]string{bad}) })
	if err == nil {
		t.Fatal("validate accepted a truncated binary trace")
	}
	if !strings.Contains(out, "INVALID") {
		t.Errorf("validate printed %q, want an INVALID line", strings.TrimSpace(out))
	}
}

// TestWriteTraceBinaryEncoding drives writeTrace's -encoding switch and
// checks the binary output loads back identically to the JSON output.
func TestWriteTraceBinaryEncoding(t *testing.T) {
	v1, _, _ := testTraceFiles(t)
	tr, err := themis.LoadTrace(v1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jsonOut := filepath.Join(dir, "out.json")
	binOut := filepath.Join(dir, "out.bin")
	if err := writeTrace(tr, jsonOut, "json"); err != nil {
		t.Fatal(err)
	}
	if err := writeTrace(tr, binOut, "binary"); err != nil {
		t.Fatal(err)
	}
	if err := writeTrace(tr, filepath.Join(dir, "x"), "protobuf"); err == nil {
		t.Error("writeTrace accepted an unknown encoding")
	}

	fromJSON, err := themis.LoadTrace(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := themis.LoadTrace(binOut)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := fromJSON.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := fromBin.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(ja) != len(ba) {
		t.Fatalf("app counts differ: json %d, binary %d", len(ja), len(ba))
	}
	for i := range ja {
		if ja[i].ID != ba[i].ID || ja[i].SubmitTime != ba[i].SubmitTime {
			t.Errorf("app %d differs across encodings: %v vs %v", i, ja[i].ID, ba[i].ID)
		}
	}
}
