// Command arbiterd runs the Themis cross-app Arbiter as an HTTP daemon. ML
// app Agents (see cmd/agentd) register with it; the daemon periodically
// pools free and lease-expired GPUs, offers them to the worst-off fraction
// of apps and runs the partial-allocation auction over their bids.
//
// With -shards N the daemon partitions the cluster across N arbiter shards:
// apps are homed on shards by consistent hashing, each shard auctions its
// own capacity slice, and leftover GPUs are re-offered cross-shard to the
// most-starved apps. With -join the daemon additionally gossips membership
// with peer arbiters (heartbeats on /v1/gossip, suspicion timeouts via
// -suspect-after/-dead-after); GET /v1/shards reports both.
//
// Observability: the protocol listener serves /metrics (Prometheus text
// format), /healthz and /debug/rounds (the last auction rounds' phase traces
// as JSON). -debug-addr starts a second listener adding net/http/pprof under
// /debug/pprof/ — profiling stays off the protocol port unless asked for.
// SIGQUIT prints the round trace ring to stderr without stopping the daemon.
//
// Examples:
//
//	arbiterd -listen :7100 -cluster testbed -f 0.8 -lease 20 -interval 30s
//	arbiterd -listen :7100 -cluster sim -shards 4
//	arbiterd -listen :7100 -shards 2 -debug-addr 127.0.0.1:7190
//	arbiterd -listen :7101 -shards 4 -name arb-b -advertise http://10.0.0.2:7101 -join http://10.0.0.1:7100
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"themis"
	"themis/daemon"
)

func main() {
	var (
		listen      = flag.String("listen", ":7100", "address to serve the Arbiter API on")
		clusterKind = flag.String("cluster", "testbed", "cluster topology: 'sim' (256 GPUs) or 'testbed' (50 GPUs)")
		fairness    = flag.Float64("f", 0.8, "fairness knob f")
		lease       = flag.Float64("lease", 20, "lease duration in scheduling minutes")
		interval    = flag.Duration("interval", 30*time.Second, "wall-clock interval between auction rounds (0 disables the loop; trigger with POST /v1/auction)")
		timeScale   = flag.Float64("timescale", 1, "scheduling minutes per wall-clock minute (e.g. 60 makes one real second one scheduling minute)")
		debugAddr   = flag.String("debug-addr", "", "address for the debug listener serving /metrics, /healthz, /debug/rounds and /debug/pprof/ (empty: no pprof; metrics stay on -listen)")

		shards       = flag.Int("shards", 1, "number of arbiter shards to partition the cluster across")
		name         = flag.String("name", "", "this arbiter's gossip member name (default: the listen address)")
		advertise    = flag.String("advertise", "", "base URL peers reach this arbiter at, e.g. http://10.0.0.1:7100 (default: http://<listen>)")
		join         = flag.String("join", "", "base URL of any existing arbiter to join via gossip (empty: no gossip)")
		heartbeat    = flag.Duration("heartbeat", time.Second, "gossip heartbeat interval")
		suspectAfter = flag.Duration("suspect-after", 3*time.Second, "silence before a gossip peer is suspected")
		deadAfter    = flag.Duration("dead-after", 10*time.Second, "silence before a gossip peer is declared dead")
	)
	flag.Parse()

	topo, err := themis.Cluster(*clusterKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbiterd:", err)
		os.Exit(1)
	}
	cfg := daemon.ArbiterConfig{FairnessKnob: *fairness, LeaseDuration: *lease}
	start := time.Now()
	clock := func() float64 { return time.Since(start).Minutes() * *timeScale }

	var (
		handler    http.Handler
		runAuction func(float64) (daemon.AuctionResponse, error)
		roundTrace *daemon.RoundRing
	)
	if *shards > 1 || *join != "" {
		server, err := daemon.NewShardedArbiter(topo, cfg, *shards)
		if err != nil {
			log.Fatalf("arbiterd: %v", err)
		}
		server.Clock = clock
		if *join != "" || *name != "" {
			memberName := *name
			if memberName == "" {
				memberName = *listen
			}
			addr := *advertise
			if addr == "" {
				addr = "http://" + *listen
			}
			member, err := daemon.NewMembership(daemon.MembershipConfig{
				Name:              memberName,
				Addr:              addr,
				HeartbeatInterval: *heartbeat,
				SuspectAfter:      *suspectAfter,
				DeadAfter:         *deadAfter,
			})
			if err != nil {
				log.Fatalf("arbiterd: %v", err)
			}
			server.Membership = member
			if *join != "" {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := member.Join(ctx, *join); err != nil {
					log.Printf("arbiterd: %v (will keep gossiping)", err)
				}
				cancel()
			}
			go member.Run(context.Background())
			log.Printf("arbiterd: gossiping as %s at %s (suspect %v, dead %v)",
				memberName, addr, *suspectAfter, *deadAfter)
		}
		handler = server.Handler()
		runAuction = server.RunAuction
		roundTrace = server.RoundTrace()
		log.Printf("arbiterd: %d shards over %d-GPU %s cluster", *shards, topo.TotalGPUs(), *clusterKind)
	} else {
		server, err := daemon.NewArbiterServer(topo, cfg)
		if err != nil {
			log.Fatalf("arbiterd: %v", err)
		}
		server.Clock = clock
		handler = server.Handler()
		runAuction = server.RunAuction
		roundTrace = server.RoundTrace()
	}

	// SIGQUIT dumps the recent rounds' phase traces to stderr and keeps
	// serving — the kill -QUIT equivalent of /debug/rounds for when the
	// daemon is reachable over SSH but not HTTP.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			roundTrace.WriteText(os.Stderr)
		}
	}()

	if *debugAddr != "" {
		go func() {
			log.Printf("arbiterd: debug listener (pprof, /metrics, /debug/rounds) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, daemon.NewDebugMux(roundTrace)); err != nil {
				log.Printf("arbiterd: debug listener: %v", err)
			}
		}()
	}

	if *interval > 0 {
		go func() {
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			for range ticker.C {
				if _, err := runAuction(clock()); err != nil {
					log.Printf("arbiterd: auction round failed: %v", err)
				}
			}
		}()
	}

	log.Printf("arbiterd: serving %d-GPU %s cluster on %s (f=%.2f, lease=%.0f min)",
		topo.TotalGPUs(), *clusterKind, *listen, *fairness, *lease)
	if err := http.ListenAndServe(*listen, handler); err != nil {
		log.Fatalf("arbiterd: %v", err)
	}
}
