// Command arbiterd runs the Themis cross-app Arbiter as an HTTP daemon. ML
// app Agents (see cmd/agentd) register with it; the daemon periodically
// pools free and lease-expired GPUs, offers them to the worst-off fraction
// of apps and runs the partial-allocation auction over their bids.
//
// Example:
//
//	arbiterd -listen :7100 -cluster testbed -f 0.8 -lease 20 -interval 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"themis"
	"themis/daemon"
)

func main() {
	var (
		listen      = flag.String("listen", ":7100", "address to serve the Arbiter API on")
		clusterKind = flag.String("cluster", "testbed", "cluster topology: 'sim' (256 GPUs) or 'testbed' (50 GPUs)")
		fairness    = flag.Float64("f", 0.8, "fairness knob f")
		lease       = flag.Float64("lease", 20, "lease duration in scheduling minutes")
		interval    = flag.Duration("interval", 30*time.Second, "wall-clock interval between auction rounds (0 disables the loop; trigger with POST /v1/auction)")
		timeScale   = flag.Float64("timescale", 1, "scheduling minutes per wall-clock minute (e.g. 60 makes one real second one scheduling minute)")
	)
	flag.Parse()

	topo, err := themis.Cluster(*clusterKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arbiterd:", err)
		os.Exit(1)
	}
	server, err := daemon.NewArbiterServer(topo, daemon.ArbiterConfig{
		FairnessKnob:  *fairness,
		LeaseDuration: *lease,
	})
	if err != nil {
		log.Fatalf("arbiterd: %v", err)
	}
	start := time.Now()
	server.Clock = func() float64 { return time.Since(start).Minutes() * *timeScale }

	if *interval > 0 {
		go func() {
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			for range ticker.C {
				if _, err := server.RunAuction(server.Clock()); err != nil {
					log.Printf("arbiterd: auction round failed: %v", err)
				}
			}
		}()
	}

	log.Printf("arbiterd: serving %d-GPU %s cluster on %s (f=%.2f, lease=%.0f min)",
		topo.TotalGPUs(), *clusterKind, *listen, *fairness, *lease)
	if err := http.ListenAndServe(*listen, server.Handler()); err != nil {
		log.Fatalf("arbiterd: %v", err)
	}
}
