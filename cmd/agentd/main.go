// Command agentd runs one ML app's Themis Agent as an HTTP daemon: it
// answers the Arbiter's finish-time-fairness probes, prepares bids for GPU
// offers and receives winning allocations. The app it represents is either
// loaded from a trace file (the first app in the trace) or generated
// synthetically.
//
// The listener serves /metrics (Prometheus text format) and /healthz next to
// the protocol endpoints; -debug-addr starts a second listener adding
// net/http/pprof under /debug/pprof/.
//
// Example:
//
//	agentd -listen :7201 -arbiter http://localhost:7100 -app my-app -jobs 8 -model VGG16
//	agentd -listen :7201 -arbiter http://localhost:7100 -debug-addr 127.0.0.1:7291
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"themis"
	"themis/daemon"
)

func main() {
	var (
		listen     = flag.String("listen", ":7201", "address to serve the Agent API on")
		advertise  = flag.String("advertise", "", "base URL the Arbiter should call back on (default http://localhost<listen>)")
		arbiterURL = flag.String("arbiter", "", "Arbiter base URL to register with (empty skips registration)")
		appID      = flag.String("app", "agent-app", "application ID")
		model      = flag.String("model", "ResNet50", "model family (placement-sensitivity profile)")
		jobs       = flag.Int("jobs", 8, "number of hyperparameter trials")
		work       = flag.Float64("work", 240, "serial GPU-minutes per trial")
		gang       = flag.Int("gang", 4, "GPUs per trial")
		clusterKnd = flag.String("cluster", "testbed", "cluster topology the Arbiter schedules: 'sim' or 'testbed'")
		tracePath  = flag.String("trace", "", "load the app from a trace file instead of generating one")
		debugAddr  = flag.String("debug-addr", "", "address for the debug listener serving /metrics, /healthz and /debug/pprof/ (empty: no pprof; metrics stay on -listen)")
	)
	flag.Parse()

	topo, err := themis.Cluster(*clusterKnd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agentd:", err)
		os.Exit(1)
	}

	app, err := buildApp(*tracePath, *appID, *model, *jobs, *work, *gang)
	if err != nil {
		log.Fatalf("agentd: %v", err)
	}
	server, err := daemon.NewAgentServer(topo, app)
	if err != nil {
		log.Fatalf("agentd: %v", err)
	}

	callback := *advertise
	if callback == "" {
		callback = "http://localhost" + *listen
	}
	if *arbiterURL != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		resp, err := daemon.NewArbiterClient(*arbiterURL).Register(ctx, string(app.ID), callback, app.MaxParallelism())
		if err != nil {
			log.Fatalf("agentd: registering with %s: %v", *arbiterURL, err)
		}
		log.Printf("agentd: registered %s with arbiter (lease %.0f min)", app.ID, resp.LeaseMin)
	}

	if *debugAddr != "" {
		go func() {
			log.Printf("agentd: debug listener (pprof, /metrics) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, daemon.NewDebugMux(nil)); err != nil {
				log.Printf("agentd: debug listener: %v", err)
			}
		}()
	}

	log.Printf("agentd: serving app %s (%d trials, %s, demand %d GPUs) on %s",
		app.ID, len(app.Jobs), app.Profile.Name, app.MaxParallelism(), *listen)
	if err := http.ListenAndServe(*listen, server.Handler()); err != nil {
		log.Fatalf("agentd: %v", err)
	}
}

// buildApp loads the first app from a trace or synthesises one.
func buildApp(tracePath, id, model string, jobs int, work float64, gang int) (*themis.App, error) {
	if tracePath != "" {
		tr, err := themis.LoadTrace(tracePath)
		if err != nil {
			return nil, err
		}
		apps, err := tr.ToApps()
		if err != nil {
			return nil, err
		}
		if len(apps) == 0 {
			return nil, fmt.Errorf("trace %s contains no apps", tracePath)
		}
		return apps[0], nil
	}
	profile, err := themis.Model(model)
	if err != nil {
		return nil, err
	}
	var trials []*themis.Job
	for i := 0; i < jobs; i++ {
		j := themis.NewJob(themis.AppID(id), i, work, gang)
		j.Quality = float64(i) / float64(jobs+1)
		j.Seed = int64(i + 1)
		trials = append(trials, j)
	}
	return themis.NewApp(themis.AppID(id), 0, profile, trials)
}
