// Command benchgate compares two `go test -json -bench` output streams — a
// checked-in baseline and the current run — and fails when a benchmark has
// slowed down beyond tolerance.
//
// Raw ns/op is not comparable across machines, so the gate normalises: each
// benchmark's slowdown ratio (current/baseline ns/op) is divided by the
// median ratio across all shared benchmarks. A uniformly slower machine moves
// every ratio equally and cancels out; only benchmarks that regressed
// relative to the rest of the suite trip the gate.
//
//	go test -run '^$' -bench . -benchtime 1x -json ./internal/sim/ ./internal/pack/ > BENCH_current.json
//	benchgate -baseline BENCH_baseline.json -current BENCH_current.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline `go test -json` bench stream")
		currentPath  = flag.String("current", "", "current `go test -json` bench stream to gate")
		tolerance    = flag.Float64("tolerance", 0.15, "maximum allowed median-normalised slowdown (0.15 = 15%)")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	baseline, err := loadBench(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	current, err := loadBench(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	report, failed := gate(baseline, current, *tolerance)
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

// benchLine matches a full textual benchmark result line:
// "BenchmarkName-8    10    123456 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// nsPerOp extracts the timing from a result fragment: "1   7177466 ns/op ...".
var nsPerOp = regexp.MustCompile(`(?:^|\s)([0-9.]+) ns/op`)

// loadBench extracts benchmark name → ns/op from a `go test -json` stream.
// The test2json encoder splits a benchmark's name and its result line across
// separate output events, so the event's Test field — the canonical name,
// free of the "-N" GOMAXPROCS suffix — is the reliable key. Plain `go test
// -bench` text output works too: full result lines are scanned directly.
// A benchmark appearing multiple times keeps its minimum (the least noisy
// sample).
//
// Text result lines cannot be keyed directly: the trailing "-N" is the
// GOMAXPROCS marker on a multi-proc host but PART OF THE NAME on a
// single-proc host (GOMAXPROCS=1 appends no suffix — blindly stripping
// would corrupt "apps-512" into "apps", inventing a phantom benchmark whose
// min sample comes from whichever sub-benchmark's line got mangled first).
// They are resolved after the scan against the canonical Test-keyed names:
// an exact match records under the name as written, and only names with no
// canonical counterpart (pure text streams) fall back to stripping the
// suffix.
func loadBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]float64)
	record := func(name string, ns float64) {
		if ns <= 0 {
			return
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	type textResult struct {
		name string
		ns   float64
	}
	var texts []textResult
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var event struct {
			Action string `json:"Action"`
			Test   string `json:"Test"`
			Output string `json:"Output"`
		}
		if strings.HasPrefix(line, "{") && json.Unmarshal([]byte(line), &event) == nil {
			if event.Action != "output" || !strings.Contains(event.Output, "ns/op") {
				continue
			}
			if event.Test != "" {
				if m := nsPerOp.FindStringSubmatch(event.Output); m != nil {
					if ns, err := strconv.ParseFloat(m[1], 64); err == nil {
						record(event.Test, ns)
					}
				}
				continue
			}
			line = strings.TrimSpace(event.Output)
		}
		if m := benchLine.FindStringSubmatch(line); m != nil {
			if ns, err := strconv.ParseFloat(m[2], 64); err == nil {
				texts = append(texts, textResult{m[1], ns})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	for _, t := range texts {
		if _, exact := out[t.name]; exact {
			record(t.name, t.ns)
			continue
		}
		record(trimProcSuffix(t.name), t.ns)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found in %s", path)
	}
	return out, nil
}

// trimProcSuffix drops the trailing "-N" GOMAXPROCS marker from a benchmark
// name, if present.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// gate compares current against baseline and renders a verdict table. It
// fails when any shared benchmark's median-normalised slowdown exceeds
// 1+tolerance. Benchmarks present on only one side are reported but never
// fail the gate (they have nothing to regress against).
func gate(baseline, current map[string]float64, tolerance float64) (string, bool) {
	var shared []string
	for name := range current {
		if _, ok := baseline[name]; ok {
			shared = append(shared, name)
		}
	}
	sort.Strings(shared)
	if len(shared) == 0 {
		return "benchgate: no benchmarks shared between baseline and current\n", true
	}

	ratios := make([]float64, len(shared))
	for i, name := range shared {
		ratios[i] = current[name] / baseline[name]
	}
	med := median(ratios)

	var b strings.Builder
	failed := false
	fmt.Fprintf(&b, "benchgate: %d shared benchmarks, median ratio %.3f, tolerance %.0f%%\n",
		len(shared), med, tolerance*100)
	for i, name := range shared {
		normalized := ratios[i] / med
		verdict := "ok"
		if normalized > 1+tolerance {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(&b, "  %-60s %12.0f -> %12.0f ns/op  ratio %.3f  normalized %.3f  %s\n",
			name, baseline[name], current[name], ratios[i], normalized, verdict)
	}
	for _, name := range sortedKeys(current) {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(&b, "  %-60s (new, not in baseline)\n", name)
		}
	}
	for _, name := range sortedKeys(baseline) {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(&b, "  %-60s (missing from current run)\n", name)
		}
	}
	if failed {
		fmt.Fprintf(&b, "benchgate: FAIL — benchmark(s) slowed down >%.0f%% beyond the suite median\n", tolerance*100)
	} else {
		fmt.Fprintf(&b, "benchgate: ok\n")
	}
	return b.String(), failed
}

func median(values []float64) float64 {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
