package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSimEventCore/heap/apps-64-8": "BenchmarkSimEventCore/heap/apps-64",
		"BenchmarkPackSimCluster-16":           "BenchmarkPackSimCluster",
		"BenchmarkNoSuffix":                    "BenchmarkNoSuffix",
		"BenchmarkTrailing-dash":               "BenchmarkTrailing-dash",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadBenchParsesJSONAndText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	content := strings.Join([]string{
		// test2json splits name and result: the Test field carries the name.
		`{"Action":"output","Package":"p","Test":"BenchmarkA/sub","Output":"   10   1500 ns/op\n"}`,
		`{"Action":"run","Package":"p"}`,
		`BenchmarkB-8   100   250.5 ns/op   12 B/op`,
		`{"Action":"output","Package":"p","Output":"ok  \tp\t0.5s\n"}`,
		// Combined name+result in one event still parses via the Test field.
		`{"Action":"output","Package":"p","Test":"BenchmarkA/sub","Output":"BenchmarkA/sub      \t   10   1200 ns/op\n"}`,
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkA/sub"] != 1200 { // duplicate keeps the minimum
		t.Errorf("BenchmarkA/sub = %v, want 1200", got["BenchmarkA/sub"])
	}
	if got["BenchmarkB"] != 250.5 {
		t.Errorf("BenchmarkB = %v, want 250.5", got["BenchmarkB"])
	}
}

// TestLoadBenchSingleProcSubBenchmarks pins the GOMAXPROCS=1 case: on a
// single-proc host benchmark names carry no "-N" suffix, so a combined
// name+result line flushed into a Test-less output event spells the name
// exactly as the canonical Test field does. Stripping its numeric tail
// ("apps-512" → "apps") must not happen — it would invent a phantom
// benchmark whose min sample is whichever sub-benchmark mangled first,
// and the phantom then FAILs the gate when baseline and current caught
// different sub-benchmarks' samples.
func TestLoadBenchSingleProcSubBenchmarks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	content := strings.Join([]string{
		`{"Action":"output","Package":"p","Test":"BenchmarkCore/apps-64","Output":"   10   1000 ns/op\n"}`,
		`{"Action":"output","Package":"p","Test":"BenchmarkCore/apps-512","Output":"   10   9000 ns/op\n"}`,
		// test2json occasionally flushes name+result together with no Test
		// field; on a 1-proc host the spelled name IS the canonical name.
		`{"Action":"output","Package":"p","Output":"BenchmarkCore/apps-512   \t   10   8000 ns/op\n"}`,
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkCore/apps-512"] != 8000 {
		t.Errorf("BenchmarkCore/apps-512 = %v, want 8000 (text line merged into canonical name)", got["BenchmarkCore/apps-512"])
	}
	if got["BenchmarkCore/apps-64"] != 1000 {
		t.Errorf("BenchmarkCore/apps-64 = %v, want 1000", got["BenchmarkCore/apps-64"])
	}
	if ns, ok := got["BenchmarkCore/apps"]; ok {
		t.Errorf("phantom benchmark BenchmarkCore/apps = %v recorded from a mis-trimmed sub-benchmark name", ns)
	}
}

func TestGateNormalisesMachineSpeed(t *testing.T) {
	baseline := map[string]float64{"a": 100, "b": 200, "c": 400}
	// Current machine is uniformly 3x slower: every ratio is 3, the median
	// normalises them all to 1, and the gate passes.
	current := map[string]float64{"a": 300, "b": 600, "c": 1200}
	report, failed := gate(baseline, current, 0.15)
	if failed {
		t.Errorf("uniform slowdown tripped the gate:\n%s", report)
	}
}

func TestGateCatchesRelativeRegression(t *testing.T) {
	baseline := map[string]float64{"a": 100, "b": 200, "c": 400}
	// Same 3x machine, but "c" additionally regressed 2x relative to peers.
	current := map[string]float64{"a": 300, "b": 600, "c": 2400}
	report, failed := gate(baseline, current, 0.15)
	if !failed {
		t.Errorf("relative regression passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Errorf("report does not flag the failure:\n%s", report)
	}
}

func TestGateIgnoresUnsharedBenchmarks(t *testing.T) {
	baseline := map[string]float64{"a": 100, "gone": 50}
	current := map[string]float64{"a": 100, "new": 75}
	report, failed := gate(baseline, current, 0.15)
	if failed {
		t.Errorf("unshared benchmarks tripped the gate:\n%s", report)
	}
	if !strings.Contains(report, "new, not in baseline") || !strings.Contains(report, "missing from current") {
		t.Errorf("report does not mention unshared benchmarks:\n%s", report)
	}
}
