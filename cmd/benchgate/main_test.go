package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkSimEventCore/heap/apps-64-8": "BenchmarkSimEventCore/heap/apps-64",
		"BenchmarkPackSimCluster-16":           "BenchmarkPackSimCluster",
		"BenchmarkNoSuffix":                    "BenchmarkNoSuffix",
		"BenchmarkTrailing-dash":               "BenchmarkTrailing-dash",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadBenchParsesJSONAndText(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	content := strings.Join([]string{
		// test2json splits name and result: the Test field carries the name.
		`{"Action":"output","Package":"p","Test":"BenchmarkA/sub","Output":"   10   1500 ns/op\n"}`,
		`{"Action":"run","Package":"p"}`,
		`BenchmarkB-8   100   250.5 ns/op   12 B/op`,
		`{"Action":"output","Package":"p","Output":"ok  \tp\t0.5s\n"}`,
		// Combined name+result in one event still parses via the Test field.
		`{"Action":"output","Package":"p","Test":"BenchmarkA/sub","Output":"BenchmarkA/sub      \t   10   1200 ns/op\n"}`,
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkA/sub"] != 1200 { // duplicate keeps the minimum
		t.Errorf("BenchmarkA/sub = %v, want 1200", got["BenchmarkA/sub"])
	}
	if got["BenchmarkB"] != 250.5 {
		t.Errorf("BenchmarkB = %v, want 250.5", got["BenchmarkB"])
	}
}

func TestGateNormalisesMachineSpeed(t *testing.T) {
	baseline := map[string]float64{"a": 100, "b": 200, "c": 400}
	// Current machine is uniformly 3x slower: every ratio is 3, the median
	// normalises them all to 1, and the gate passes.
	current := map[string]float64{"a": 300, "b": 600, "c": 1200}
	report, failed := gate(baseline, current, 0.15)
	if failed {
		t.Errorf("uniform slowdown tripped the gate:\n%s", report)
	}
}

func TestGateCatchesRelativeRegression(t *testing.T) {
	baseline := map[string]float64{"a": 100, "b": 200, "c": 400}
	// Same 3x machine, but "c" additionally regressed 2x relative to peers.
	current := map[string]float64{"a": 300, "b": 600, "c": 2400}
	report, failed := gate(baseline, current, 0.15)
	if !failed {
		t.Errorf("relative regression passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Errorf("report does not flag the failure:\n%s", report)
	}
}

func TestGateIgnoresUnsharedBenchmarks(t *testing.T) {
	baseline := map[string]float64{"a": 100, "gone": 50}
	current := map[string]float64{"a": 100, "new": 75}
	report, failed := gate(baseline, current, 0.15)
	if failed {
		t.Errorf("unshared benchmarks tripped the gate:\n%s", report)
	}
	if !strings.Contains(report, "new, not in baseline") || !strings.Contains(report, "missing from current") {
		t.Errorf("report does not mention unshared benchmarks:\n%s", report)
	}
}
