// Command expdriver regenerates the data behind every table and figure in
// the paper's evaluation (§8). Each figure's data series is printed as
// tab-separated values, ready for plotting.
//
// Usage:
//
//	expdriver -fig all            # every figure at paper-fidelity scale
//	expdriver -fig 5a -quick      # one figure at benchmark scale
//	expdriver -fig 9a -seed 7
//	expdriver -fig all -workers 4 # bound the sweep engine's worker pool
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"themis/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1,2,4a,4b,4c,5a,5b,6,7,8,9a,9b,10,11 or 'all'")
		quick   = flag.Bool("quick", false, "use the scaled-down benchmark configuration instead of paper-fidelity scale")
		seed    = flag.Int64("seed", 0, "override the workload seed (0 keeps the default)")
		workers = flag.Int("workers", 0, "worker pool size for the sweep engine (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "expdriver: -workers must be non-negative")
		os.Exit(2)
	}
	opts.Workers = *workers

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"1", "2", "4a", "4b", "4c", "5a", "5b", "6", "7", "8", "9a", "9b", "10", "11"}
	}
	for _, f := range figs {
		if err := emit(strings.TrimSpace(f), opts); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver: figure %s: %v\n", f, err)
			os.Exit(1)
		}
	}
}

func emit(fig string, opts experiments.Options) error {
	switch fig {
	case "1":
		res, err := experiments.Figure1(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 1: CDF of task durations (minutes)")
		fmt.Println("duration_min\tcdf")
		for i := range res.Durations {
			fmt.Printf("%.2f\t%.3f\n", res.Durations[i], res.Fractions[i])
		}
		fmt.Printf("# trace: %d apps, %d jobs, jobs/app median %.0f, duration p50 %.1f min\n",
			res.Stats.NumApps, res.Stats.NumJobs, res.Stats.JobsPerAppMedian, res.Stats.TaskDurationP50)

	case "2":
		fmt.Println("# Figure 2: throughput (images/sec) for 4 GPUs on 1 server vs 2x2 servers")
		fmt.Println("model\tone_server\ttwo_by_two\tslowdown")
		for _, r := range experiments.Figure2() {
			fmt.Printf("%s\t%.1f\t%.1f\t%.2f\n", r.Model, r.OneServer, r.TwoByTwoServers, r.Slowdown)
		}

	case "4a":
		rows, err := experiments.Figure4a(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 4a: finish-time fairness vs fairness knob f")
		fmt.Println("f\tmax_rho\tmedian_rho\tmin_rho")
		for _, r := range rows {
			fmt.Printf("%.1f\t%.3f\t%.3f\t%.3f\n", r.F, r.MaxFairness, r.MedianFairness, r.MinFairness)
		}

	case "4b":
		rows, err := experiments.Figure4b(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 4b: GPU time (GPU-minutes) vs fairness knob f")
		fmt.Println("f\tgpu_time_min")
		for _, r := range rows {
			fmt.Printf("%.1f\t%.0f\n", r.F, r.GPUTime)
		}

	case "4c":
		rows, err := experiments.Figure4c(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 4c: max finish-time fairness vs lease duration")
		fmt.Println("lease_min\tmax_rho")
		for _, r := range rows {
			fmt.Printf("%.0f\t%.3f\n", r.LeaseMinutes, r.MaxFairness)
		}

	case "5a", "5b", "6", "7":
		cmp, err := experiments.RunComparison(opts)
		if err != nil {
			return err
		}
		switch fig {
		case "5a":
			fmt.Println("# Figure 5a: max finish-time fairness per scheme")
			fmt.Printf("# ideal max fairness at this contention: %.2f\n", cmp.IdealMaxFairness)
			fmt.Println("scheme\tmax_rho\tpct_from_ideal")
			for _, r := range cmp.Figure5a() {
				fmt.Printf("%s\t%.3f\t%.1f%%\n", r.Scheme, r.MaxFairness, r.PercentFromIdeal)
			}
		case "5b":
			fmt.Println("# Figure 5b: Jain's fairness index per scheme")
			fmt.Println("scheme\tjains_index")
			for _, r := range cmp.Figure5b() {
				fmt.Printf("%s\t%.3f\n", r.Scheme, r.JainsIndex)
			}
		case "6":
			fmt.Println("# Figure 6: CDF of app completion times (minutes) per scheme")
			fmt.Println("scheme\tcompletion_min\tcdf")
			for _, c := range cmp.Figure6(20) {
				for i := range c.Values {
					fmt.Printf("%s\t%.1f\t%.2f\n", c.Scheme, c.Values[i], c.Fractions[i])
				}
			}
			fmt.Println("# Themis mean-JCT improvement over other schemes:")
			for scheme, pct := range cmp.MeanJCTImprovement() {
				fmt.Printf("# vs %s: %.1f%%\n", scheme, pct)
			}
		case "7":
			fmt.Println("# Figure 7: CDF of placement score per scheme")
			fmt.Println("scheme\tplacement_score\tcdf")
			for _, c := range cmp.Figure7(20) {
				for i := range c.Values {
					fmt.Printf("%s\t%.2f\t%.2f\n", c.Scheme, c.Values[i], c.Fractions[i])
				}
			}
		}

	case "8":
		res, err := experiments.Figure8(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 8: GPU allocation timeline for a short and a long app")
		fmt.Println("app\ttime_min\tgpus")
		for _, e := range res.Short {
			fmt.Printf("short\t%.1f\t%d\n", e.Time, e.GPUs)
		}
		for _, e := range res.Long {
			fmt.Printf("long\t%.1f\t%d\n", e.Time, e.GPUs)
		}

	case "9a":
		rows, err := experiments.Figure9a(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 9a: factor of improvement in max fairness (Themis over Tiresias) vs % network-intensive apps")
		fmt.Println("pct_network\tthemis_max_rho\ttiresias_max_rho\tfactor")
		for _, r := range rows {
			fmt.Printf("%.0f\t%.3f\t%.3f\t%.2f\n", r.NetworkFraction*100, r.ThemisMaxFairness, r.TiresiasMaxFairness, r.FactorOfImprovement)
		}

	case "9b":
		rows, err := experiments.Figure9b(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 9b: GPU time (GPU-minutes) vs % network-intensive apps")
		fmt.Println("pct_network\tthemis\tgandiva\tslaq\ttiresias")
		for _, r := range rows {
			fmt.Printf("%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n", r.NetworkFraction*100,
				r.GPUTime["themis"], r.GPUTime["gandiva"], r.GPUTime["slaq"], r.GPUTime["tiresias"])
		}

	case "10":
		rows, err := experiments.Figure10(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 10: Jain's fairness index vs contention factor")
		fmt.Println("contention\tthemis\ttiresias")
		for _, r := range rows {
			fmt.Printf("%.0fX\t%.3f\t%.3f\n", r.ContentionFactor, r.ThemisJains, r.TiresiasJains)
		}

	case "11":
		rows, err := experiments.Figure11(opts)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 11: max finish-time fairness vs % error in bid valuations")
		fmt.Println("pct_error\tmax_rho")
		for _, r := range rows {
			fmt.Printf("%.0f%%\t%.3f\n", r.Theta*100, r.MaxFairness)
		}

	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	fmt.Println()
	return nil
}
