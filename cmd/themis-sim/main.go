// Command themis-sim runs one cluster-scheduling simulation — a synthetic
// trace, a registered scenario, or a trace file (native JSON, the compact v3
// binary container, or an external Philly/Alibaba-style CSV cluster log)
// replayed against a GPU cluster under a chosen scheduling policy — and
// prints the fairness and efficiency metrics the paper evaluates.
//
// Examples:
//
//	themis-sim -cluster sim -policy themis -apps 50
//	themis-sim -cluster testbed -policy tiresias -apps 30 -scale 0.2
//	themis-sim -cluster sim-fabric -packer pack-to-empty -apps 50
//	themis-sim -scenario heavy-tailed -apps 40 -policy themis
//	themis-sim -scenario fitted.json -apps 40 -seed 7
//	themis-sim -trace trace.json -policy gandiva
//	themis-sim -trace trace.bin -policy themis
//	themis-sim -trace cluster_log.csv -trace-format auto -max-apps 200
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"themis"
)

func main() {
	var (
		clusterKind = flag.String("cluster", "sim", "cluster topology: "+strings.Join(themis.Clusters(), ", "))
		policyName  = flag.String("policy", "themis", "scheduling policy: "+strings.Join(themis.Policies(), ", "))
		packerName  = flag.String("packer", "", "placement engine for policy grants: "+strings.Join(themis.Packers(), ", ")+" (empty: policies place their own)")
		numApps     = flag.Int("apps", 30, "number of apps to generate (ignored with -trace)")
		seed        = flag.Int64("seed", 1, "workload generation seed")
		scale       = flag.Float64("scale", 1.0, "job duration scale factor")
		interArr    = flag.Float64("interarrival", 20, "mean app inter-arrival time (minutes)")
		contention  = flag.Float64("contention", 1, "contention factor (scales the arrival rate)")
		lease       = flag.Float64("lease", 20, "GPU lease duration (minutes)")
		fairness    = flag.Float64("f", 0.8, "Themis fairness knob")
		bidError    = flag.Float64("biderror", 0, "Themis bid valuation error θ (Figure 11)")
		scenario    = flag.String("scenario", "", "generate the workload from a registered scenario ("+strings.Join(themis.Scenarios(), ", ")+") or from a fit-report file written by 'tracegen fit'")
		tracePath   = flag.String("trace", "", "replay apps from a trace file instead of generating")
		traceFormat = flag.String("trace-format", "auto", "trace file format: auto, json, binary, philly or alibaba")
		maxApps     = flag.Int("max-apps", 0, "cap the number of apps imported from -trace (0: all)")
		model       = flag.String("model", "", "stamp apps imported from a CSV -trace with this model family")
		horizon     = flag.Float64("horizon", 0, "simulation horizon in minutes (0 = unlimited)")
		perApp      = flag.Bool("per-app", false, "also print per-app records")
	)
	flag.Parse()

	opts := []themis.Option{
		themis.WithCluster(*clusterKind),
		themis.WithPolicy(*policyName),
		themis.WithSeed(*seed),
		themis.WithLeaseDuration(*lease),
		themis.WithFairnessKnob(*fairness),
		themis.WithBidError(*bidError),
		themis.WithHorizon(*horizon),
		themis.WithPacker(*packerName),
	}
	switch {
	case *tracePath != "" && *scenario != "":
		fmt.Fprintln(os.Stderr, "themis-sim: -trace and -scenario are mutually exclusive")
		os.Exit(2)
	case *tracePath != "":
		// The importer handles native JSON too (format auto-detection), so
		// one flag pair covers replaying both trace files and raw cluster
		// logs; CSV-only knobs are simply unused on JSON input.
		tr, err := themis.ImportTraceFile(*tracePath, themis.TraceFormat(*traceFormat), themis.ImportOptions{
			MaxApps: *maxApps,
			Model:   *model,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "themis-sim:", err)
			os.Exit(1)
		}
		opts = append(opts, themis.WithTrace(tr))
	case *scenario != "":
		// A fit-report file (tracegen fit output) registers as a calibrated
		// scenario under its path, then runs through the ordinary registry:
		// the import → fit → register → simulate loop in one invocation.
		if _, err := themis.DescribeScenario(*scenario); err != nil {
			if _, statErr := os.Stat(*scenario); statErr == nil {
				rep, loadErr := themis.LoadFitReport(*scenario)
				if loadErr != nil {
					fmt.Fprintln(os.Stderr, "themis-sim:", loadErr)
					os.Exit(1)
				}
				if regErr := themis.RegisterCalibratedScenario(*scenario, rep); regErr != nil {
					fmt.Fprintln(os.Stderr, "themis-sim:", regErr)
					os.Exit(1)
				}
			}
		}
		opts = append(opts, themis.WithScenario(*scenario, themis.ScenarioParams{
			Seed:             *seed,
			NumApps:          *numApps,
			DurationScale:    *scale,
			ContentionFactor: *contention,
			MeanInterArrival: *interArr,
		}))
	default:
		spec := themis.DefaultWorkloadSpec()
		spec.NumApps = *numApps
		spec.Seed = *seed
		spec.DurationScale = *scale
		spec.MeanInterArrival = *interArr
		spec.ContentionFactor = *contention
		opts = append(opts, themis.WithWorkload(spec))
	}

	if err := run(*clusterKind, *perApp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "themis-sim:", err)
		os.Exit(1)
	}
}

func run(clusterKind string, perApp bool, opts []themis.Option) error {
	s, err := themis.NewSimulation(opts...)
	if err != nil {
		return err
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		return err
	}
	sum := rep.Summary
	topo := s.Topology()

	fmt.Printf("policy               %s\n", sum.Policy)
	fmt.Printf("cluster              %s (%d GPUs, %d machines, %d racks)\n", clusterKind, topo.TotalGPUs(), topo.NumMachines(), topo.NumRacks())
	fmt.Printf("apps                 %d finished / %d total\n", sum.AppsFinished, sum.AppsTotal)
	fmt.Printf("makespan             %.1f min\n", sum.Makespan)
	fmt.Printf("peak contention      %.2fx\n", sum.PeakContention)
	fmt.Printf("max fairness (rho)   %.3f\n", sum.MaxFairness)
	fmt.Printf("median fairness      %.3f\n", sum.MedianFairness)
	fmt.Printf("Jain's index         %.3f\n", sum.JainsIndex)
	fmt.Printf("mean completion time %.1f min (p95 %.1f)\n", sum.MeanCompletionTime, sum.P95CompletionTime)
	fmt.Printf("mean placement score %.3f\n", sum.MeanPlacementScore)
	fmt.Printf("cluster GPU time     %.0f GPU-min\n", sum.GPUTime)
	fr := rep.Fragmentation
	fmt.Printf("fragmentation        score mean %.3f / peak %.3f (free GPUs %.1f; largest blocks: machine %.1f, rack %.1f, domain %.1f)\n",
		fr.MeanScore, fr.PeakScore, fr.MeanFreeGPUs, fr.MeanLargestMachineBlock, fr.MeanLargestRackBlock, fr.MeanLargestDomainBlock)

	if st := rep.Auction; st != nil {
		fmt.Printf("auctions             %d (offers %d, GPUs auctioned %d, leftover %d)\n",
			st.Auctions, st.OffersMade, st.GPUsAuctioned, st.GPUsLeftOver)
		if st.Auctions > 0 {
			fmt.Printf("auction latency      mean %.2f ms, max %.2f ms\n",
				float64(st.TotalAuctionTime.Milliseconds())/float64(st.Auctions), float64(st.MaxAuctionTime.Milliseconds()))
		}
	}

	if perApp {
		fmt.Println()
		fmt.Println("app\tmodel\tsubmit\tcompletion\trho\tplacement\tjobs\tkilled")
		for _, rec := range rep.Apps {
			fmt.Printf("%s\t%s\t%.1f\t%.1f\t%.3f\t%.2f\t%d\t%d\n",
				rec.App, rec.Model, rec.SubmitTime, rec.CompletionTime, rec.FinishTimeFairness, rec.PlacementScore, rec.JobsTotal, rec.JobsKilled)
		}
	}
	return nil
}
