package daemon_test

// End-to-end coverage for the daemon layer: a full arbiterd+agentd auction
// round — register → probe → bid → allocate — driven entirely over HTTP via
// httptest servers, asserted wire-for-wire against an in-process core
// auction over identical apps. The protocol is supposed to be a transparent
// transport for the core mechanism, so every ρ, every bid-table row and
// every allocation must come back identical.

import (
	"context"
	"net/http/httptest"
	"testing"

	"themis"
	"themis/daemon"
	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/hyperparam"
)

func e2eTopo(t *testing.T) *themis.Topology {
	t.Helper()
	topo, err := themis.ClusterConfig{
		MachineSpecs:    []themis.MachineSpec{{Count: 4, GPUs: 4, SlotSize: 2}},
		MachinesPerRack: 2,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// e2eApp builds one test app deterministically; called twice (daemon side
// and oracle side) it yields identical apps. The two apps differ in model,
// job count and work so their ρ estimates never tie — auction outcomes stay
// order-independent.
func e2eApp(t *testing.T, id string, nJobs int, work float64, model string) *themis.App {
	t.Helper()
	profile, err := themis.Model(model)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*themis.Job, nJobs)
	for i := 0; i < nJobs; i++ {
		j := themis.NewJob(themis.AppID(id), i, work, 4)
		j.Quality = float64(i) / float64(nJobs+1)
		j.Seed = int64(i + 3)
		jobs[i] = j
	}
	app, err := themis.NewApp(themis.AppID(id), 0, profile, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

type e2eSpec struct {
	id    string
	nJobs int
	work  float64
	model string
}

var e2eApps = []e2eSpec{
	{"app-slow", 3, 400, "VGG16"},
	{"app-fast", 1, 60, "ResNet50"},
}

// oracleAgent builds the in-process twin of one daemon agent and replays the
// same call sequence the HTTP side has seen so far (one probe, one bid), so
// any stateful estimator behaviour stays in lockstep.
func oracleAgent(t *testing.T, topo *themis.Topology, spec e2eSpec, free cluster.Alloc) *core.Agent {
	t.Helper()
	app := e2eApp(t, spec.id, spec.nJobs, spec.work, spec.model)
	ag := core.NewAgent(topo, app, hyperparam.ForApp(app), nil)
	ag.ReportRho(0, cluster.NewAlloc())
	ag.PrepareBid(0, free.Clone(), cluster.NewAlloc())
	return ag
}

func TestDaemonAuctionRoundMatchesCore(t *testing.T) {
	topo := e2eTopo(t)
	ctx := context.Background()
	cfg := daemon.ArbiterConfig{FairnessKnob: 0, LeaseDuration: 20}

	arbSrv, err := daemon.NewArbiterServer(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arbSrv.Clock = func() float64 { return 0 }
	arbTS := httptest.NewServer(arbSrv.Handler())
	defer arbTS.Close()
	arbClient := daemon.NewArbiterClient(arbTS.URL)

	// Register: one agentd per app, each a real HTTP server.
	agentSrvs := make(map[string]*daemon.AgentServer)
	agentClients := make(map[string]*daemon.AgentClient)
	for _, spec := range e2eApps {
		app := e2eApp(t, spec.id, spec.nJobs, spec.work, spec.model)
		srv, err := daemon.NewAgentServer(topo, app)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		agentSrvs[spec.id] = srv
		agentClients[spec.id] = daemon.NewAgentClient(ts.URL)

		resp, err := arbClient.Register(ctx, spec.id, ts.URL, app.MaxParallelism())
		if err != nil || !resp.OK || resp.LeaseMin != 20 {
			t.Fatalf("register %s: %+v err=%v", spec.id, resp, err)
		}
	}

	st, err := arbClient.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalGPUs != 16 || st.FreeGPUs != 16 || len(st.Agents) != 2 {
		t.Fatalf("status after register: %+v", st)
	}

	free := cluster.NewState(topo).FreeVector()

	// Probe and bid over the wire; each answer must equal the in-process
	// agent's answer for the same inputs.
	for _, spec := range e2eApps {
		app := e2eApp(t, spec.id, spec.nJobs, spec.work, spec.model)
		oracle := core.NewAgent(topo, app, hyperparam.ForApp(app), nil)

		gotRho, err := agentClients[spec.id].ProbeRho(ctx, 0, nil)
		if err != nil {
			t.Fatalf("probe %s: %v", spec.id, err)
		}
		if wantRho := oracle.ReportRho(0, cluster.NewAlloc()); gotRho != wantRho {
			t.Errorf("%s: wire rho %v != core rho %v", spec.id, gotRho, wantRho)
		}

		gotBid, err := agentClients[spec.id].RequestBid(ctx, 0, free.Clone(), nil)
		if err != nil {
			t.Fatalf("bid %s: %v", spec.id, err)
		}
		wantBid := oracle.PrepareBid(0, free.Clone(), cluster.NewAlloc())
		if gotBid.App != wantBid.App || len(gotBid.Entries) != len(wantBid.Entries) {
			t.Fatalf("%s: wire bid shape %d rows != core %d rows", spec.id, len(gotBid.Entries), len(wantBid.Entries))
		}
		for i := range wantBid.Entries {
			if !gotBid.Entries[i].Alloc.Equal(wantBid.Entries[i].Alloc) || gotBid.Entries[i].Rho != wantBid.Entries[i].Rho {
				t.Errorf("%s: bid row %d differs: wire %v@%v, core %v@%v", spec.id, i,
					gotBid.Entries[i].Alloc, gotBid.Entries[i].Rho, wantBid.Entries[i].Alloc, wantBid.Entries[i].Rho)
			}
		}
	}

	// Allocate: one auction round over HTTP.
	auction, err := arbClient.TriggerAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if auction.Offered != 16 {
		t.Fatalf("offered %d GPUs, want 16", auction.Offered)
	}
	got := make(map[string]cluster.Alloc)
	for id, wire := range auction.Decisions {
		alloc, err := wire.ToAlloc()
		if err != nil {
			t.Fatal(err)
		}
		got[id] = alloc
	}

	// Oracle: the same auction in-process. The arbiter server feeds agents
	// to the auction in map order, so accept either ordering (the outcomes
	// should agree anyway — ρs are distinct by construction).
	matched := false
	var want map[string]cluster.Alloc
	for _, order := range [][]e2eSpec{{e2eApps[0], e2eApps[1]}, {e2eApps[1], e2eApps[0]}} {
		arb, err := core.NewArbiter(topo, core.Config{FairnessKnob: 0, LeaseDuration: 20})
		if err != nil {
			t.Fatal(err)
		}
		states := make([]core.AgentState, 0, len(order))
		for _, spec := range order {
			states = append(states, core.AgentState{
				Agent:   oracleAgent(t, topo, spec, free),
				Current: cluster.NewAlloc(),
			})
		}
		decisions, err := arb.OfferResources(0, free.Clone(), states)
		if err != nil {
			t.Fatal(err)
		}
		oracle := make(map[string]cluster.Alloc)
		for _, d := range decisions {
			oracle[string(d.App)] = oracle[string(d.App)].Add(d.Alloc)
		}
		if allocMapsEqual(got, oracle) {
			matched, want = true, oracle
			break
		}
		want = oracle
	}
	if !matched {
		t.Fatalf("wire allocations diverge from core auction:\nwire: %v\ncore: %v", got, want)
	}

	// The winning allocations must have been delivered to the agent daemons.
	total := 0
	for id, alloc := range got {
		total += alloc.Total()
		if cur := agentSrvs[id].Current(); !cur.Equal(alloc) {
			t.Errorf("%s: delivered allocation %v != decision %v", id, cur, alloc)
		}
	}
	if total == 0 {
		t.Fatal("auction granted nothing")
	}

	// And the arbiter's cluster state must reflect the grants and leases.
	st, err = arbClient.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.FreeGPUs != 16-total {
		t.Errorf("free GPUs %d after granting %d of 16", st.FreeGPUs, total)
	}
	if st.Auctions != 1 || st.ActiveLeases == 0 {
		t.Errorf("status after auction: %+v", st)
	}
	for id, alloc := range got {
		if st.Held[id] != alloc.Total() {
			t.Errorf("%s: status holds %d, decision granted %d", id, st.Held[id], alloc.Total())
		}
	}
}

func allocMapsEqual(a, b map[string]cluster.Alloc) bool {
	if len(a) != len(b) {
		return false
	}
	for id, alloc := range a {
		if !alloc.Equal(b[id]) {
			return false
		}
	}
	return true
}

// TestDaemonConstructorValidation pins the daemon layer's error contract.
func TestDaemonConstructorValidation(t *testing.T) {
	topo := e2eTopo(t)
	if _, err := daemon.NewArbiterServer(nil, daemon.DefaultArbiterConfig()); err == nil {
		t.Error("nil topology should fail")
	}
	if _, err := daemon.NewArbiterServer(topo, daemon.ArbiterConfig{FairnessKnob: 2, LeaseDuration: 20}); err == nil {
		t.Error("bad fairness knob should fail")
	}
	if _, err := daemon.NewAgentServer(topo, nil); err == nil {
		t.Error("nil app should fail")
	}
	bad := &themis.App{ID: "empty"}
	if _, err := daemon.NewAgentServer(topo, bad); err == nil {
		t.Error("invalid app should fail")
	}
}
