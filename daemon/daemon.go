// Package daemon is the public face of Themis's distributed deployment: the
// cross-app Arbiter and per-app Agents running as HTTP services, speaking
// the probe → offer → bid → allocate protocol of §6. cmd/arbiterd and
// cmd/agentd are thin wrappers over this package, and examples/distributed
// drives the full loop in-process.
package daemon

import (
	"fmt"
	"net/http"

	"themis"
	"themis/internal/core"
	"themis/internal/hyperparam"
	"themis/internal/rpc"
	"themis/internal/shard"
	"themis/internal/telemetry"
)

// Servers and clients of the HTTP protocol. ArbiterServer exposes Handler
// (the http.Handler to serve), RunAuction (one auction round) and a
// pluggable Clock; AgentServer exposes Handler and the agent's current
// allocation.
type (
	ArbiterServer = rpc.ArbiterServer
	AgentServer   = rpc.AgentServer
	ArbiterClient = rpc.ArbiterClient
	AgentClient   = rpc.AgentClient
	// ShardedArbiter partitions the cluster across N arbiter shards behind
	// the same HTTP protocol surface; see NewShardedArbiter.
	ShardedArbiter = rpc.ShardedArbiterServer
	// Membership is the gossip/heartbeat group of a multi-arbiter
	// deployment; attach one to a ShardedArbiter to serve /v1/gossip.
	Membership = shard.Membership
	// MembershipConfig tunes the gossip heartbeat and suspicion timeouts.
	MembershipConfig = shard.MembershipConfig
	// RoundRing traces the last auction rounds' phase spans; ArbiterServer
	// and ShardedArbiter expose theirs via RoundTrace(), /debug/rounds
	// serves it as JSON, and arbiterd dumps it on SIGQUIT.
	RoundRing = telemetry.RoundRing
)

// NewDebugMux returns the opt-in debug surface a daemon serves on its
// -debug-addr: /metrics and /healthz (also present on the main listener),
// /debug/rounds over ring (nil serves an empty trace) and net/http/pprof
// under /debug/pprof/. It is a separate mux precisely so profiling endpoints
// never ride on the public protocol listener.
func NewDebugMux(ring *RoundRing) http.Handler {
	return telemetry.DebugMux(telemetry.Default(), ring)
}

// Wire types crossing the protocol boundary.
type (
	// RegisterResponse acknowledges an agent registration.
	RegisterResponse = rpc.RegisterResponse
	// StatusResponse reports the arbiter's cluster and auction state.
	StatusResponse = rpc.StatusResponse
	// AuctionResponse reports one auction round's decisions.
	AuctionResponse = rpc.AuctionResponse
	// WireAlloc is the serialised form of a GPU allocation; ToAlloc converts
	// it back to a themis.Alloc.
	WireAlloc = rpc.WireAlloc
)

// ArbiterConfig carries the arbiter's tunables. Values are used verbatim —
// FairnessKnob 0 really means f = 0 (every app receives offers) — so start
// from DefaultArbiterConfig to get the paper's settings; a zero-valued
// LeaseDuration is rejected as invalid.
type ArbiterConfig struct {
	// FairnessKnob is f ∈ [0,1] (§5).
	FairnessKnob float64
	// LeaseDuration is the GPU lease length in scheduling minutes.
	LeaseDuration float64
}

// DefaultArbiterConfig returns the configuration the paper converges on
// (§8.2): f = 0.8 and a 20-minute lease.
func DefaultArbiterConfig() ArbiterConfig {
	def := core.DefaultConfig()
	return ArbiterConfig{FairnessKnob: def.FairnessKnob, LeaseDuration: def.LeaseDuration}
}

// NewArbiterServer builds the Themis cross-app Arbiter for a cluster and
// wraps it in its HTTP server. Invalid configurations return errors.
func NewArbiterServer(topo *themis.Topology, cfg ArbiterConfig) (*ArbiterServer, error) {
	if topo == nil {
		return nil, fmt.Errorf("daemon: nil topology")
	}
	arb, err := core.NewArbiter(topo, core.Config{
		FairnessKnob:  cfg.FairnessKnob,
		LeaseDuration: cfg.LeaseDuration,
	})
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	return rpc.NewArbiterServer(arb), nil
}

// NewShardedArbiter partitions topo into shards arbiter shards, each running
// partial-allocation auctions over its own capacity slice; RunAuction runs
// the per-shard auctions concurrently and then the cross-shard
// reconciliation round. Apps are homed on shards by consistent hashing, so
// any process that knows the topology and shard count computes the same
// routing.
func NewShardedArbiter(topo *themis.Topology, cfg ArbiterConfig, shards int) (*ShardedArbiter, error) {
	if topo == nil {
		return nil, fmt.Errorf("daemon: nil topology")
	}
	s, err := rpc.NewShardedArbiterServer(topo, core.Config{
		FairnessKnob:  cfg.FairnessKnob,
		LeaseDuration: cfg.LeaseDuration,
	}, shards)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	return s, nil
}

// NewMembership starts a gossip membership from cfg; Join it to any existing
// member and attach it to a ShardedArbiter to serve and spread heartbeats.
func NewMembership(cfg MembershipConfig) (*Membership, error) {
	m, err := shard.NewMembership(cfg)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	return m, nil
}

// NewAgentServer builds one app's Themis Agent — answering fairness probes
// and preparing bids with the app-appropriate hyperparameter tuner — and
// wraps it in its HTTP server.
func NewAgentServer(topo *themis.Topology, app *themis.App) (*AgentServer, error) {
	if topo == nil {
		return nil, fmt.Errorf("daemon: nil topology")
	}
	if app == nil {
		return nil, fmt.Errorf("daemon: nil app")
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("daemon: invalid app %s: %w", app.ID, err)
	}
	agent := core.NewAgent(topo, app, hyperparam.ForApp(app), nil)
	return rpc.NewAgentServer(agent), nil
}

// NewArbiterClient returns a client for an arbiter daemon's base URL.
func NewArbiterClient(baseURL string) *ArbiterClient { return rpc.NewArbiterClient(baseURL) }

// NewAgentClient returns a client for an agent daemon's base URL.
func NewAgentClient(baseURL string) *AgentClient { return rpc.NewAgentClient(baseURL) }
