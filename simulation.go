package themis

import (
	"context"
	"fmt"

	"themis/internal/sim"
)

// Simulation is one configured simulation run: a workload replayed against a
// cluster topology under a scheduling policy. Build one with NewSimulation
// and execute it once with Run; policies and apps accumulate run state, so
// construct a fresh Simulation per run.
type Simulation struct {
	sim    *sim.Simulator
	policy SchedulerPolicy
	topo   *Topology
	apps   []*App
	ran    bool
}

// NewSimulation assembles a simulation from functional options. Unset knobs
// default to the paper's configuration — the 50-GPU testbed topology and the
// Themis policy with f = 0.8, 20-minute leases, 0.75-minute restarts — but a
// workload must be supplied via WithApps, WithWorkload, WithTrace or
// WithTraceFile. All configuration errors (unknown cluster or policy names,
// out-of-range knobs, invalid workloads) surface here, before the run.
func NewSimulation(opts ...Option) (*Simulation, error) {
	s := defaultSettings()
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("themis: nil Option")
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}

	topo := s.topology
	if topo == nil {
		var err error
		if topo, err = Cluster(s.clusterName); err != nil {
			return nil, err
		}
	}

	apps, err := resolveApps(s)
	if err != nil {
		return nil, err
	}

	policy := s.policy
	if policy == nil {
		cfg := s.policyCfg
		cfg.LeaseDuration = s.leaseDuration
		if cfg.ErrorSeed == 0 {
			cfg.ErrorSeed = s.seed
		}
		if policy, err = Policy(s.policyName, cfg); err != nil {
			return nil, err
		}
	} else if s.policyCfgSet {
		return nil, fmt.Errorf("themis: WithPolicyInstance conflicts with WithFairnessKnob/WithBidError; configure the instance directly")
	}

	var packer Packer
	if s.packerName != "" {
		if packer, err = buildPacker(s.packerName, topo); err != nil {
			return nil, err
		}
	}

	simulator, err := sim.New(sim.Config{
		Topology:        topo,
		Apps:            apps,
		Policy:          policy,
		Packer:          packer,
		LeaseDuration:   s.leaseDuration,
		RestartOverhead: s.restartOverhead,
		Horizon:         s.horizon,
		Failures:        s.failures,
	})
	if err != nil {
		return nil, fmt.Errorf("themis: %w", err)
	}
	return &Simulation{sim: simulator, policy: policy, topo: topo, apps: apps}, nil
}

// resolveApps materialises the configured workload source.
func resolveApps(s *settings) ([]*App, error) {
	switch {
	case s.apps != nil:
		return s.apps, nil
	case s.spec != nil:
		spec := *s.spec
		if spec.Seed == 0 {
			spec.Seed = s.seed
		}
		return GenerateWorkload(spec)
	case s.scenarioName != "":
		params := s.scenarioParams
		if params.Seed == 0 {
			params.Seed = s.seed
		}
		return GenerateScenario(s.scenarioName, params)
	case s.trace != nil:
		return s.trace.ToApps()
	case s.tracePath != "":
		tr, err := LoadTrace(s.tracePath)
		if err != nil {
			return nil, err
		}
		return tr.ToApps()
	default:
		return nil, fmt.Errorf("themis: no workload configured (use WithApps, WithWorkload, WithScenario, WithTrace or WithTraceFile)")
	}
}

// Topology returns the cluster the simulation schedules onto.
func (s *Simulation) Topology() *Topology { return s.topo }

// Apps returns the workload the simulation replays.
func (s *Simulation) Apps() []*App { return s.apps }

// PolicyName returns the name of the scheduling policy in use.
func (s *Simulation) PolicyName() string { return s.policy.Name() }

// Run executes the simulation to completion — every app finished, the
// horizon reached, or no further events — and returns the collected Report.
// Cancelling the context aborts the run between decision points with the
// context's error. A Simulation is single-use: policies and apps accumulate
// run state, so a second Run returns an error.
func (s *Simulation) Run(ctx context.Context) (*Report, error) {
	if s.ran {
		return nil, fmt.Errorf("themis: Simulation already run; construct a new one with NewSimulation")
	}
	s.ran = true
	res, err := s.sim.Run(ctx)
	if err != nil {
		return nil, err
	}
	return newReport(res, s.policy), nil
}
