// Package themis is a from-scratch Go reproduction of "Themis: Fair and
// Efficient GPU Cluster Scheduling for Machine Learning Workloads"
// (Mahajan et al., NSDI 2020).
//
// The library lives under internal/ (see DESIGN.md for the module map):
// finish-time-fair partial-allocation auctions (internal/core), the GPU
// cluster and placement-sensitivity models (internal/cluster,
// internal/placement), the workload and trace machinery
// (internal/workload, internal/trace), the hyperparameter tuners
// (internal/hyperparam), the event-driven simulator (internal/sim), the
// baseline schedulers the paper compares against (internal/schedulers), and
// the per-figure experiment harness (internal/experiments).
//
// The benchmarks in this root package regenerate every table and figure of
// the paper's evaluation; run them with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.
package themis
