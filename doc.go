// Package themis is a from-scratch Go reproduction of "Themis: Fair and
// Efficient GPU Cluster Scheduling for Machine Learning Workloads"
// (Mahajan et al., NSDI 2020), exposed behind a stable public API.
//
// This root package is the facade: it assembles simulations with functional
// options and runs them under the paper's schedulers,
//
//	s, err := themis.NewSimulation(
//		themis.WithCluster(themis.ClusterTestbed),
//		themis.WithWorkload(themis.DefaultWorkloadSpec()),
//		themis.WithPolicy("themis"),
//		themis.WithFairnessKnob(0.8),
//	)
//	if err != nil { ... }
//	report, err := s.Run(ctx)
//
// returning a typed Report (fairness CDFs, JCT, GPU time, auction
// telemetry). Policies are constructed by name through a registry —
// Policy("themis"|"gandiva"|"tiresias"|"slaq"|"resource-fair"|"strawman") —
// extensible via RegisterPolicy. Misconfiguration surfaces as errors at
// construction time, and Run honors context cancellation.
//
// Parameter studies — many policies, seeds and workloads, as in the paper's
// §8 sweeps — run through RunSweep, which fans a grid of SweepSpecs (each a
// NewSimulation option list) across a bounded worker pool:
//
//	results, err := themis.RunSweep(ctx, 0, []themis.SweepSpec{
//		{Name: "themis", Options: []themis.Option{themis.WithPolicy("themis"), themis.WithWorkload(spec)}},
//		{Name: "tiresias", Options: []themis.Option{themis.WithPolicy("tiresias"), themis.WithWorkload(spec)}},
//	})
//
// Results align with the specs regardless of worker count, each run
// constructs its simulation inside its own worker, and the first failure
// cancels the rest. The sweep engine also powers themis/experiments: every
// figure constructor fans its {parameter, seed, scheme} grid across
// Options.Workers goroutines with results identical to a sequential run.
// The Grid type expands a Policies × Clusters × Scenarios × Seeds cross
// product into sweep specs declaratively.
//
// Workloads come from a scenario library mirroring the policy registry:
// GenerateScenario("paper-mix"|"diurnal"|"heavy-tailed"|"bursty"|
// "mixed-gangs", params...) materialises a registered scenario, WithScenario
// feeds one to a simulation, and RegisterScenario (with ScenarioFromConfig
// over a ScenarioConfig composition of arrival pattern × job-size law ×
// gang mix) extends the library. Real cluster logs normalise into replayable
// traces through ImportTrace: Philly-style and Alibaba-style CSV adapters
// plus format auto-detection, validated by the same typed-error contract as
// native traces (see internal/trace). The adapters stream — one bounded
// pass with an online top-K selection under ImportOptions.MaxApps, so
// multi-GB logs import without materialising their rows — and
// ImportTraceStream adds progress callbacks for long imports.
//
// Traces use format v2: an optional per-app PlacementSpec block carries the
// placement-sensitivity profile name and locality constraints (per-machine
// GPU floor, machine-spread cap, fabric-domain and GPU-flavor affinities)
// on the wire, and ToApps threads them into the simulator's placement
// scoring, so a constrained trace replays with locality-sensitive
// scheduling anywhere. v1 traces load unchanged (lossless upgrade-on-read;
// SupportedTraceVersions lists both).
//
// Clusters are hierarchical and registered like policies: Cluster builds a
// registered topology by name ("sim", "testbed", or the three-fabric-domain
// "sim-fabric"), RegisterCluster extends the registry, and BuildTopology
// constructs one from a declarative TopologySpec — regions of named fabric
// domains of racks of machine groups, the names resolving trace placement
// blocks and job affinities. LiftTopology exposes the indexed hierarchy
// view (TopologyTree) over any topology. Placement values the hierarchy
// (slot / machine / rack / domain / cross-domain locality), and WithPacker
// routes every policy grant through a registered placement engine — the
// built-in "pack-to-empty" packs gangs machine- and domain-local,
// spilling across domains by free capacity — while Report.Fragmentation
// summarises, time-weighted, how the free pool fragmented across the
// hierarchy during the run.
//
// The calibration subsystem closes the loop between real traces and
// synthetic scenarios: FitScenario (or FitTrace) learns a full
// ScenarioConfig from an observed workload — arrival-process fitting
// (Poisson rate, diurnal day shape, bursty spikes), job-size law selection
// (lognormal vs Pareto by AIC, KS distances reported) and gang-population
// estimation — returning a FitReport with goodness-of-fit evidence and
// provenance. RegisterCalibratedScenario installs the fitted scenario in
// the registry, where WithScenario, Grid and RunSweep treat it like any
// built-in while DescribeScenario and ScenarioFit keep its provenance
// visible; experiments.CalibratedStudy quantifies how well the fitted twin
// stands in for its source trace. cmd/tracegen is the CLI workbench for all
// of this (generate/list/import/fit/validate/describe), and cmd/themis-sim
// replays traces (-trace/-trace-format), registered scenarios (-scenario)
// and fit reports (-scenario fitted.json) directly.
//
// The companion public packages are themis/experiments (one constructor per
// figure of the paper's evaluation) and themis/daemon (the distributed
// Arbiter/Agent HTTP services). The implementation lives under internal/ —
// see DESIGN.md for the module map and the public-API layering.
//
// The benchmarks in this root package regenerate every table and figure of
// the paper's evaluation; run them with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.
package themis
