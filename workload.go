package themis

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"themis/internal/placement"
	"themis/internal/trace"
	"themis/internal/workload"
)

// DefaultWorkloadSpec returns the generator parameters matching the
// enterprise trace the paper replays (§8.1): lognormal trials-per-app with
// median 23, mostly 4-GPU gangs, Poisson arrivals every 20 minutes, 40% of
// apps network-intensive.
func DefaultWorkloadSpec() WorkloadSpec { return workload.DefaultGeneratorConfig() }

// GenerateWorkload synthesises a workload from the spec. Zero-valued fields
// whose zero value would be invalid (counts, durations, scales) are filled
// from DefaultWorkloadSpec, so callers only set what they sweep; fraction
// fields keep their zero value because zero is meaningful there — start from
// DefaultWorkloadSpec to get the paper's 40% network-intensive mix.
func GenerateWorkload(spec WorkloadSpec) ([]*App, error) {
	return workload.Generate(spec.WithDefaults())
}

// SummarizeWorkload computes distribution statistics over a workload.
func SummarizeWorkload(apps []*App) WorkloadStats { return workload.Summarize(apps) }

// Model returns the placement-sensitivity profile of a model family by name
// (e.g. "VGG16", "ResNet50").
func Model(name string) (Profile, error) {
	p, ok := placement.ByName(name)
	if !ok {
		return Profile{}, fmt.Errorf("themis: unknown model %q (catalog: %s)", name, strings.Join(ModelNames(), ", "))
	}
	return p, nil
}

// ModelNames lists the model families in the placement catalog.
func ModelNames() []string {
	var names []string
	for _, p := range placement.Catalog() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

// NewJob creates one trial of an app: serialWork GPU-minutes of training on
// a gang of gangSize GPUs.
func NewJob(app AppID, index int, serialWork float64, gangSize int) *Job {
	return workload.NewJob(app, index, serialWork, gangSize)
}

// NewApp creates an app from its trials and validates it.
func NewApp(id AppID, submitTime float64, profile Profile, jobs []*Job) (*App, error) {
	app := workload.NewApp(id, submitTime, profile, jobs)
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("themis: invalid app %s: %w", id, err)
	}
	return app, nil
}

// NewTrace captures a workload as a serialisable trace.
func NewTrace(name string, apps []*App) Trace { return trace.FromApps(name, apps) }

// LoadTrace reads a trace from a file written by SaveTrace or Trace.Write.
func LoadTrace(path string) (Trace, error) { return trace.Load(path) }

// SaveTrace writes a trace to a file.
func SaveTrace(path string, tr Trace) error { return trace.Save(path, tr) }

// SaveTraceBinary writes a trace to a file in the compact binary container
// (format v3): an interned string table plus delta-encoded varint app
// records. The encoding is lossless — LoadTrace on the result produces the
// same apps, byte for byte, as the JSON form — and typically several times
// smaller and faster to decode. LoadTrace and ReadTrace auto-detect it.
func SaveTraceBinary(path string, tr Trace) error { return trace.SaveBinary(path, tr) }

// WriteTraceBinary encodes a trace into the binary container on a stream.
func WriteTraceBinary(w io.Writer, tr Trace) error { return tr.WriteBinary(w) }

// LoadTraceWithInfo is LoadTrace plus wire-level metadata: which encoding the
// file used (TraceFormatJSON or TraceFormatBinary) and the format version it
// declared on disk before any in-memory upgrade — the value `tracegen
// validate` reports.
func LoadTraceWithInfo(path string) (Trace, TraceLoadInfo, error) { return trace.LoadWithInfo(path) }

// ReadTrace parses a trace from a stream.
func ReadTrace(r io.Reader) (Trace, error) { return trace.Read(r) }

// ImportTrace normalises an external cluster trace into the native Trace
// form: TraceFormatPhilly reads Philly-style CSV job logs (jobid, submit
// time, GPUs, duration, status), TraceFormatAlibaba reads Alibaba-style CSV
// task logs (job_name, inst_num, plan_gpu, start/end, status), and
// TraceFormatAuto sniffs the input. The result validates like any native
// trace and replays through WithTrace.
//
// The CSV adapters stream: rows are parsed one at a time and, for the
// row-per-job Philly format, an online top-K selection keeps importer memory
// at O(ImportOptions.MaxApps) regardless of input size — a multi-GB cluster
// log imports without materialising its rows. Use ImportTraceStream to
// observe progress.
func ImportTrace(r io.Reader, format TraceFormat, opts ImportOptions) (Trace, error) {
	return trace.Import(r, format, opts)
}

// ImportTraceStream is ImportTrace with progress reporting for long-running
// streaming imports: onProgress (when non-nil) receives a snapshot of rows,
// bytes and retained apps about every ImportOptions.ProgressEvery rows
// (default 100000) and once at end of input, on the importing goroutine.
func ImportTraceStream(r io.Reader, format TraceFormat, opts ImportOptions, onProgress func(ImportProgress)) (Trace, error) {
	if onProgress != nil {
		opts.Progress = onProgress
	}
	return trace.Import(r, format, opts)
}

// ImportTraceFile imports an external cluster trace from a file.
func ImportTraceFile(path string, format TraceFormat, opts ImportOptions) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, fmt.Errorf("themis: %w", err)
	}
	defer f.Close()
	return trace.Import(f, format, opts)
}

// TraceFormats lists the concrete trace formats ImportTrace accepts.
func TraceFormats() []TraceFormat { return trace.Formats() }
