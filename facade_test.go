package themis_test

// These tests exercise the public API exactly as an importing project would:
// only the themis package, no internal imports.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"themis"
)

// quickSpec is a workload small enough for sub-second end-to-end runs.
func quickSpec() themis.WorkloadSpec {
	spec := themis.DefaultWorkloadSpec()
	spec.NumApps = 6
	spec.Seed = 7
	spec.JobsPerAppMedian = 3
	spec.MaxJobsPerApp = 6
	spec.DurationScale = 0.15
	spec.MeanInterArrival = 4
	return spec
}

func TestOptionDefaults(t *testing.T) {
	s, err := themis.NewSimulation(themis.WithWorkload(quickSpec()))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PolicyName(); got != "themis" {
		t.Errorf("default policy = %q, want themis", got)
	}
	// The default topology is the paper's 50-GPU testbed.
	if got := s.Topology().TotalGPUs(); got != 50 {
		t.Errorf("default topology has %d GPUs, want 50 (testbed)", got)
	}
	if got := len(s.Apps()); got != 6 {
		t.Errorf("workload has %d apps, want 6", got)
	}
}

func TestConfigurationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []themis.Option
		want string
	}{
		{"no workload", nil, "no workload"},
		{"unknown policy", []themis.Option{themis.WithWorkload(quickSpec()), themis.WithPolicy("nope")}, "unknown policy"},
		{"unknown cluster", []themis.Option{themis.WithCluster("moon-dc")}, "unknown cluster"},
		{"fairness knob high", []themis.Option{themis.WithFairnessKnob(1.5)}, "fairness knob"},
		{"fairness knob negative", []themis.Option{themis.WithFairnessKnob(-0.1)}, "fairness knob"},
		{"negative lease", []themis.Option{themis.WithLeaseDuration(-1)}, "lease duration"},
		{"bid error", []themis.Option{themis.WithBidError(1.2)}, "bid error"},
		{"nil topology", []themis.Option{themis.WithTopology(nil)}, "WithTopology"},
		{"missing trace file", []themis.Option{themis.WithTraceFile("/nonexistent/trace.json")}, "trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := themis.NewSimulation(tc.opts...)
			if err == nil {
				t.Fatal("NewSimulation succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := themis.Policies()
	for _, want := range []string{"themis", "gandiva", "tiresias", "slaq", "resource-fair", "strawman"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in policy %q not registered (got %v)", want, names)
		}
	}
	if err := themis.RegisterPolicy("themis", func(themis.PolicyConfig) (themis.SchedulerPolicy, error) {
		return nil, nil
	}); err == nil {
		t.Error("duplicate registration succeeded, want error")
	}
	if _, err := themis.Policy("no-such-policy"); err == nil {
		t.Error("Policy on unknown name succeeded, want error")
	}
	// Invalid configurations surface at construction, not as panics mid-run.
	if _, err := themis.Policy("themis", themis.PolicyConfig{FairnessKnob: 2}); err == nil {
		t.Error("Policy with invalid fairness knob succeeded, want error")
	}
	p, err := themis.Policy("gandiva")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "gandiva" {
		t.Errorf("policy name %q, want gandiva", p.Name())
	}
}

func TestFairnessKnobZeroIsValid(t *testing.T) {
	// f = 0 offers GPUs to every app — the extreme of the paper's Figure 4a
	// sweep — and must not be conflated with "unset".
	s, err := themis.NewSimulation(
		themis.WithWorkload(quickSpec()),
		themis.WithFairnessKnob(0),
		themis.WithHorizon(4000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyInstanceConflictsWithKnobs(t *testing.T) {
	p, err := themis.Policy("gandiva")
	if err != nil {
		t.Fatal(err)
	}
	_, err = themis.NewSimulation(
		themis.WithWorkload(quickSpec()),
		themis.WithPolicyInstance(p),
		themis.WithBidError(0.2),
	)
	if err == nil || !strings.Contains(err.Error(), "WithPolicyInstance") {
		t.Errorf("instance + knob combination returned %v, want conflict error", err)
	}
}

func TestContextCancellation(t *testing.T) {
	s, err := themis.NewSimulation(themis.WithWorkload(quickSpec()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Run with cancelled context returned %v, want context.Canceled", err)
	}
}

func TestSimulationIsSingleUse(t *testing.T) {
	s, err := themis.NewSimulation(themis.WithWorkload(quickSpec()), themis.WithHorizon(2000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err == nil {
		t.Error("second Run succeeded, want error")
	}
}

func TestSmokeEveryRegisteredPolicy(t *testing.T) {
	for _, name := range themis.Policies() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := themis.NewSimulation(
				themis.WithWorkload(quickSpec()),
				themis.WithPolicy(name),
				themis.WithLeaseDuration(10),
				themis.WithHorizon(4000),
			)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Summary.AppsTotal != 6 {
				t.Errorf("report covers %d apps, want 6", rep.Summary.AppsTotal)
			}
			if rep.Summary.AppsFinished == 0 {
				t.Errorf("%s finished no apps within the horizon", name)
			}
			if rep.Summary.GPUTime <= 0 {
				t.Errorf("%s recorded no GPU time", name)
			}
			if name == "themis" {
				if rep.Auction == nil || rep.Auction.Auctions == 0 {
					t.Error("themis run reported no auction stats")
				}
			} else if rep.Auction != nil {
				t.Errorf("%s run reported Themis auction stats", name)
			}
			cdf := rep.FairnessCDF(10)
			if len(cdf.Values) != 10 || len(cdf.Fractions) != 10 {
				t.Errorf("FairnessCDF(10) has %d/%d points", len(cdf.Values), len(cdf.Fractions))
			}
			if got := len(rep.TimelineFor(rep.Apps[0].App)); got == 0 {
				t.Errorf("no timeline events for %s", rep.Apps[0].App)
			}
		})
	}
}

// greedyPolicy implements SchedulerPolicy using only public names — exactly
// what an external importer extending the registry would write.
type greedyPolicy struct{}

func (greedyPolicy) Name() string { return "greedy-test" }

func (greedyPolicy) Allocate(now float64, free themis.Alloc, view *themis.View) (map[themis.AppID]themis.Alloc, error) {
	out := make(map[themis.AppID]themis.Alloc)
	remaining := free.Clone()
	for _, st := range view.Apps {
		want := st.UnmetDemand()
		if want <= 0 || remaining.Total() == 0 {
			continue
		}
		grant := themis.Alloc{}
		for _, m := range remaining.Machines() {
			for remaining[m] > 0 && want > 0 {
				remaining[m]--
				grant[m]++
				want--
			}
		}
		if grant.Total() > 0 {
			out[st.App.ID] = grant
		}
	}
	return out, nil
}

func TestCustomPolicyViaRegistry(t *testing.T) {
	// The registry is process-global, so tolerate the duplicate error when
	// the test runs more than once in one process (go test -count=2).
	err := themis.RegisterPolicy("greedy-test", func(themis.PolicyConfig) (themis.SchedulerPolicy, error) {
		return greedyPolicy{}, nil
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	s, err := themis.NewSimulation(
		themis.WithWorkload(quickSpec()),
		themis.WithPolicy("greedy-test"),
		themis.WithHorizon(4000),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Policy != "greedy-test" {
		t.Errorf("summary policy %q, want greedy-test", rep.Summary.Policy)
	}
	if rep.Summary.AppsFinished == 0 {
		t.Error("custom policy finished no apps")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	apps, err := themis.GenerateWorkload(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	tr := themis.NewTrace("round-trip", apps)
	path := t.TempDir() + "/trace.json"
	if err := themis.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	s, err := themis.NewSimulation(themis.WithTraceFile(path), themis.WithHorizon(4000))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.AppsTotal != len(apps) {
		t.Errorf("replayed %d apps, want %d", rep.Summary.AppsTotal, len(apps))
	}
}

func TestWorkloadSpecDefaulting(t *testing.T) {
	apps, err := themis.GenerateWorkload(themis.WorkloadSpec{NumApps: 3})
	if err != nil {
		t.Fatalf("sparse spec should default the rest: %v", err)
	}
	if len(apps) != 3 {
		t.Errorf("generated %d apps, want 3", len(apps))
	}
}

func TestModelCatalog(t *testing.T) {
	if _, err := themis.Model("VGG16"); err != nil {
		t.Errorf("VGG16 missing from catalog: %v", err)
	}
	if _, err := themis.Model("NotAModel"); err == nil {
		t.Error("unknown model lookup succeeded, want error")
	}
	if names := themis.ModelNames(); len(names) == 0 {
		t.Error("empty model catalog")
	}
}

func TestCustomAppConstruction(t *testing.T) {
	profile, err := themis.Model("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*themis.Job{themis.NewJob("custom", 0, 60, 2)}
	app, err := themis.NewApp("custom", 0, profile, jobs)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := themis.ClusterConfig{
		MachineSpecs:    []themis.MachineSpec{{Count: 2, GPUs: 4, SlotSize: 2, GPU: themis.GPUTypeP100}},
		MachinesPerRack: 2,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := themis.NewSimulation(
		themis.WithTopology(topo),
		themis.WithApps(app),
		themis.WithPolicy("resource-fair"),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Finished()) != 1 {
		t.Errorf("custom app did not finish: %+v", rep.Apps)
	}
	// An invalid app (no jobs) errors at construction.
	if _, err := themis.NewApp("empty", 0, profile, nil); err == nil {
		t.Error("NewApp with no jobs succeeded, want error")
	}
}
