package themis

// Concurrent stress over the pooled replay paths: eight sweep workers each
// replay the same binary trace with their own Simulator, so the simulator-
// owned free-lists, the arbiter's bid-valuation scratch and the binary
// decoder all run under -race across goroutines. Results must also be
// deterministic — every worker's report for the same spec is byte-identical.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
)

func TestSweepOverBinaryTraceConcurrent(t *testing.T) {
	tr := binaryReplayTrace(t)
	binPath := filepath.Join(t.TempDir(), "sweep.bin")
	if err := SaveTraceBinary(binPath, tr); err != nil {
		t.Fatal(err)
	}

	const runs = 16
	specs := make([]SweepSpec, 0, runs)
	for i := 0; i < runs; i++ {
		specs = append(specs, SweepSpec{
			Name: fmt.Sprintf("bin-replay/%d", i),
			Options: []Option{
				WithCluster(ClusterTestbed),
				WithTraceFile(binPath),
				WithPolicy("themis"),
				WithSeed(11),
				WithHorizon(20000),
			},
		})
	}
	results, err := RunSweep(context.Background(), 8, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != runs {
		t.Fatalf("got %d results, want %d", len(results), runs)
	}
	want := serializeReport(results[0].Report)
	for i, r := range results[1:] {
		if got := serializeReport(r.Report); got != want {
			t.Errorf("worker replay %d diverged from replay 0\n%s", i+1, diffSnippet(want, got))
		}
	}
}
