package themis

import (
	"themis/internal/metrics"
	"themis/internal/schedulers"
	"themis/internal/sim"
)

// Report is the typed outcome of one simulation run: the headline Summary
// the paper's tables report, per-app records, the GPU-allocation timeline,
// and — when the Themis policy ran — the arbiter's auction telemetry.
type Report struct {
	// Summary holds the run's fairness (max/median ρ, Jain's index), JCT and
	// GPU-time metrics.
	Summary Summary
	// Apps holds one record per app, in AppID order.
	Apps []AppRecord
	// Timeline is every allocation change of the run, in time order.
	Timeline []AllocationEvent
	// Auction carries the Themis arbiter's statistics; nil under baselines.
	Auction *AuctionStats
	// Fragmentation is the run's time-weighted free-pool fragmentation
	// summary: mean free GPUs, the largest free blocks at the machine, rack
	// and fabric-domain levels, and the fragmentation score.
	Fragmentation FragStats

	result *sim.Result
}

// newReport wraps a simulator result into the public Report.
func newReport(res *sim.Result, policy SchedulerPolicy) *Report {
	r := &Report{
		Summary:       metrics.Summarize(res),
		Apps:          res.Apps,
		Timeline:      res.Timeline,
		Fragmentation: res.Fragmentation,
		result:        res,
	}
	if t, ok := policy.(*schedulers.Themis); ok && t.Arbiter() != nil {
		stats := t.Arbiter().Stats
		r.Auction = &stats
	}
	return r
}

// Finished returns the records of apps that completed within the run.
func (r *Report) Finished() []AppRecord { return r.result.Finished() }

// TimelineFor returns one app's allocation timeline, in time order
// (Figure 8's series).
func (r *Report) TimelineFor(id AppID) []AllocationEvent { return r.result.TimelineFor(id) }

// FairnessCDF is the empirical CDF of finish-time fairness ρ across finished
// apps (Figure 5's distribution).
func (r *Report) FairnessCDF(points int) CDF {
	return metrics.NewCDF(metrics.FairnessValues(r.result), points)
}

// CompletionTimeCDF is the empirical CDF of app completion times in minutes
// (Figure 6's distribution).
func (r *Report) CompletionTimeCDF(points int) CDF {
	return metrics.NewCDF(metrics.CompletionTimes(r.result), points)
}

// PlacementScoreCDF is the empirical CDF of time-weighted placement scores
// (Figure 7's distribution).
func (r *Report) PlacementScoreCDF(points int) CDF {
	return metrics.NewCDF(metrics.PlacementScores(r.result), points)
}
