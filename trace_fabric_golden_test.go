package themis

// Cross-encoding golden for the v2 feature set: the fabric workload — domain
// affinities, per-machine floors, placement-constrained gangs — is captured
// as a trace, written as both v2 JSON and the v3 binary container, and each
// form's materialised apps are pinned byte-identically against one snapshot.
// Together with internal/trace's v1 cross-format goldens this closes the
// matrix: every format version materialises the same apps from either
// encoding.
//
// Regenerate deliberately with:
//
//	go test -run TestFabricTraceCrossEncodingGolden -update .

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// dumpTraceApps renders materialised apps in a stable text form covering
// every field the wire carries, including the v2 affinities.
func dumpTraceApps(apps []*App) string {
	var b strings.Builder
	for _, a := range apps {
		fmt.Fprintf(&b, "app %s submit=%v profile=%s network=%t\n",
			a.ID, a.SubmitTime, a.Profile.Name, a.Profile.NetworkIntensive)
		for _, j := range a.Jobs {
			fmt.Fprintf(&b, "  job %s work=%v gang=%d maxpar=%d mingpm=%d maxmach=%d domain=%q flavor=%q iters=%d quality=%v seed=%d\n",
				j.ID, j.TotalWork, j.GangSize, j.MaxParallelism, j.MinGPUsPerMachine,
				j.MaxMachines, j.DomainAffinity, j.FlavorAffinity, j.TotalIterations, j.Quality, j.Seed)
		}
	}
	return b.String()
}

func TestFabricTraceCrossEncodingGolden(t *testing.T) {
	tr := NewTrace("fabric-golden", fabricGoldenApps(t))
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "fabric.json")
	binPath := filepath.Join(dir, "fabric.bin")
	if err := SaveTrace(jsonPath, tr); err != nil {
		t.Fatal(err)
	}
	if err := SaveTraceBinary(binPath, tr); err != nil {
		t.Fatal(err)
	}

	dumps := make(map[string]string, 2)
	for enc, path := range map[string]string{"json": jsonPath, "binary": binPath} {
		loaded, err := LoadTrace(path)
		if err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		apps, err := loaded.ToApps()
		if err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		dumps[enc] = dumpTraceApps(apps)
	}
	if dumps["json"] != dumps["binary"] {
		t.Fatalf("fabric trace materialises differently across encodings\n%s",
			diffSnippet(dumps["json"], dumps["binary"]))
	}

	golden := filepath.Join("testdata", "golden", "fabric-trace.apps.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(dumps["json"]), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden snapshot (run with -update to create): %v", err)
	}
	if dumps["json"] != string(want) {
		t.Errorf("fabric trace apps diverged from golden snapshot %s\n%s",
			golden, diffSnippet(string(want), dumps["json"]))
	}
}
