package themis

import (
	"strings"
	"testing"
)

// The cluster registry: built-ins present, descriptions resolvable, built
// topologies structurally sound, duplicates and unknowns rejected.
func TestClusterRegistry(t *testing.T) {
	names := Clusters()
	for _, want := range []string{ClusterSim, ClusterTestbed, ClusterSimFabric} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in cluster %q missing from Clusters() = %v", want, names)
		}
		if desc, err := DescribeCluster(want); err != nil || desc == "" {
			t.Errorf("DescribeCluster(%q) = %q, %v", want, desc, err)
		}
	}
	if _, err := Cluster("no-such-cluster"); err == nil || !strings.Contains(err.Error(), "no-such-cluster") {
		t.Errorf("unknown cluster error = %v, want it to name the cluster", err)
	}
	if err := RegisterCluster(ClusterSim, "dup", func() (*Topology, error) { return nil, nil }); err == nil {
		t.Error("duplicate cluster registration succeeded")
	}
	if err := RegisterCluster("", "desc", nil); err == nil {
		t.Error("empty cluster registration succeeded")
	}
}

// sim-fabric must hold the same fleet as sim, re-homed into three named
// domains the placement layer can resolve.
func TestSimFabricMatchesSimFleet(t *testing.T) {
	sim, err := Cluster(ClusterSim)
	if err != nil {
		t.Fatal(err)
	}
	fabric, err := Cluster(ClusterSimFabric)
	if err != nil {
		t.Fatal(err)
	}
	if sim.TotalGPUs() != fabric.TotalGPUs() || sim.NumMachines() != fabric.NumMachines() {
		t.Errorf("sim-fabric fleet %d GPUs / %d machines, want sim's %d / %d",
			fabric.TotalGPUs(), fabric.NumMachines(), sim.TotalGPUs(), sim.NumMachines())
	}
	tree := LiftTopology(fabric)
	if got := len(tree.Regions()); got != 1 {
		t.Fatalf("sim-fabric has %d regions, want 1", got)
	}
	for _, pod := range []string{"pod-a", "pod-b", "pod-c"} {
		if _, ok := fabric.DomainByName(pod); !ok {
			t.Errorf("sim-fabric missing fabric domain %q", pod)
		}
	}
}

// The packer registry: the built-in engine present, unknowns rejected by
// WithPacker at construction time, empty name meaning "policy places".
func TestPackerRegistry(t *testing.T) {
	found := false
	for _, n := range Packers() {
		if n == PackerPackToEmpty {
			found = true
		}
	}
	if !found {
		t.Fatalf("built-in packer %q missing from Packers() = %v", PackerPackToEmpty, Packers())
	}
	if desc, err := DescribePacker(PackerPackToEmpty); err != nil || desc == "" {
		t.Errorf("DescribePacker(%q) = %q, %v", PackerPackToEmpty, desc, err)
	}
	if _, err := NewSimulation(WithApps(smokeApps(t)...), WithPacker("no-such-packer")); err == nil {
		t.Error("unknown packer accepted by NewSimulation")
	}
	if err := RegisterPacker(PackerPackToEmpty, "dup", func(*Topology) Packer { return nil }); err == nil {
		t.Error("duplicate packer registration succeeded")
	}
	if _, err := NewSimulation(WithApps(smokeApps(t)...), WithPacker("")); err != nil {
		t.Errorf("empty packer name rejected: %v", err)
	}
}

// smokeApps builds a minimal valid workload for construction-error tests.
func smokeApps(t *testing.T) []*App {
	t.Helper()
	app, err := NewApp("smoke", 0, mustModel(t, "ResNet50"), []*Job{NewJob("smoke", 0, 10, 1)})
	if err != nil {
		t.Fatal(err)
	}
	return []*App{app}
}

func mustModel(t *testing.T, name string) Profile {
	t.Helper()
	p, err := Model(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The Grid's Clusters axis: expansion order, spec naming and the WithCluster
// option landing in each spec; unknown clusters fail Specs() up front.
func TestGridClustersAxis(t *testing.T) {
	specs, err := Grid{
		Policies: []string{"themis", "gandiva"},
		Clusters: []string{ClusterTestbed, ClusterSimFabric},
		Seeds:    []int64{1},
		Base:     []Option{WithWorkload(WorkloadSpec{NumApps: 1})},
	}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{
		"themis/testbed/seed=1",
		"themis/sim-fabric/seed=1",
		"gandiva/testbed/seed=1",
		"gandiva/sim-fabric/seed=1",
	}
	if len(specs) != len(wantNames) {
		t.Fatalf("%d specs, want %d", len(specs), len(wantNames))
	}
	for i, want := range wantNames {
		if specs[i].Name != want {
			t.Errorf("spec %d named %q, want %q", i, specs[i].Name, want)
		}
	}
	// The cluster option must actually take effect: build the sim-fabric
	// spec and check the resulting topology.
	sim, err := NewSimulation(specs[1].Options...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.Topology().DomainByName("pod-a"); !ok {
		t.Error("sim-fabric spec built a topology without pod-a")
	}
	if _, err := (Grid{Clusters: []string{"no-such-cluster"}}).Specs(); err == nil {
		t.Error("unknown cluster accepted by Grid.Specs")
	}
}
