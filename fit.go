package themis

import (
	"fmt"
	"io"
	"os"

	"themis/internal/fit"
)

// Trace calibration: learn a ScenarioConfig from an observed workload, so a
// single imported trace becomes an unbounded family of seedable synthetic
// twins. The estimators live in internal/fit; this file is their public face
// and the bridge into the scenario registry.

type (
	// FitReport is the outcome of one calibration: the learned ScenarioConfig
	// (ready for ComposeWorkload or registration), the per-axis estimates
	// with goodness-of-fit evidence (KS distances, AIC), and provenance.
	FitReport = fit.Report
	// FitProvenance identifies the trace a scenario was calibrated from.
	FitProvenance = fit.Provenance
	// ArrivalFit is the fitted arrival process plus its detection evidence.
	ArrivalFit = fit.ArrivalFit
	// SizeLawFit is the fitted job-size law plus both candidates' evidence.
	SizeLawFit = fit.SizeFit
)

// FitScenario learns a scenario description from an observed workload —
// typically the output of ImportTrace(...).ToApps() or a previously generated
// scenario. The fitted config recovers the arrival process (Poisson rate,
// diurnal day shape, or bursty spikes), the job-size law (lognormal vs Pareto
// by AIC), the gang-size population and the auxiliary generator knobs, and
// the report documents the evidence behind every choice. Fitting never
// mutates the apps and is deterministic for a fixed input.
func FitScenario(apps []*App) (*FitReport, error) {
	rep, err := fit.Fit(apps)
	if err != nil {
		return nil, fmt.Errorf("themis: %w", err)
	}
	return rep, nil
}

// FitTrace materialises a trace and fits a scenario to it, stamping the
// trace's name as the report's provenance source.
func FitTrace(tr Trace) (*FitReport, error) {
	apps, err := tr.ToApps()
	if err != nil {
		return nil, fmt.Errorf("themis: %w", err)
	}
	rep, err := FitScenario(apps)
	if err != nil {
		return nil, err
	}
	rep.Provenance.Source = tr.Name
	return rep, nil
}

// ReadFitReport parses a fit report from a stream (the JSON form written by
// FitReport.WriteJSON and the tracegen fit subcommand), validating that the
// carried scenario configuration is generatable.
func ReadFitReport(r io.Reader) (*FitReport, error) {
	rep, err := fit.ReadReport(r)
	if err != nil {
		return nil, fmt.Errorf("themis: %w", err)
	}
	return rep, nil
}

// LoadFitReport reads a fit report from a file.
func LoadFitReport(path string) (*FitReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("themis: %w", err)
	}
	defer f.Close()
	return ReadFitReport(f)
}

// SaveFitReport writes a fit report to a file.
func SaveFitReport(path string, rep *FitReport) error {
	if rep == nil {
		return fmt.Errorf("themis: SaveFitReport(nil report)")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("themis: %w", err)
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("themis: %w", err)
	}
	return f.Close()
}

// RegisterCalibratedScenario adds a fitted scenario to the registry under a
// caller-chosen name, so WithScenario, Grid sweeps, RunSweep and the CLIs
// pick it up exactly like a built-in. The entry's description is the
// report's provenance line (DescribeScenario renders it), and the full
// report stays retrievable through ScenarioFit, keeping calibrated entries
// distinguishable from hand-written ones. Registering a name twice is an
// error, as with RegisterScenario.
func RegisterCalibratedScenario(name string, rep *FitReport) error {
	if rep == nil {
		return fmt.Errorf("themis: RegisterCalibratedScenario(%q, nil report)", name)
	}
	return registerScenario(name, rep.Describe(), ScenarioFromConfig(rep.Config), rep)
}

// ScenarioFit returns the calibration report a scenario was registered with
// via RegisterCalibratedScenario, or ok=false for built-ins and scenarios
// registered through plain RegisterScenario.
func ScenarioFit(name string) (*FitReport, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	entry, ok := scenarios[name]
	if !ok || entry.fit == nil {
		return nil, false
	}
	return entry.fit, true
}
