package themis

import (
	"fmt"
	"sort"
	"sync"

	"themis/internal/cluster"
	"themis/internal/topology"
)

// Built-in cluster names accepted by Cluster and WithCluster.
const (
	// ClusterSim is the paper's 256-GPU heterogeneous simulated cluster.
	ClusterSim = "sim"
	// ClusterTestbed is the paper's 50-GPU Azure testbed topology.
	ClusterTestbed = "testbed"
	// ClusterSimFabric is the simulated fleet re-homed into three fabric
	// domains (pods): the same 256 GPUs as ClusterSim, but with a hierarchy
	// the pack-to-empty engine and the domain locality level can exploit.
	ClusterSimFabric = "sim-fabric"
)

// ClusterFactory builds a fresh topology for a registered cluster name.
// Topologies are immutable, so the factory may return a shared instance.
type ClusterFactory func() (*Topology, error)

type clusterEntry struct {
	description string
	factory     ClusterFactory
}

var (
	clusterMu       sync.RWMutex
	clusterRegistry = map[string]clusterEntry{}
)

// RegisterCluster adds a named topology to the registry, making it available
// to Cluster, WithCluster, the Grid's Clusters axis and cmd/themis-sim's
// -cluster flag. The description is surfaced by DescribeCluster. Registering
// a name twice is an error.
func RegisterCluster(name, description string, factory ClusterFactory) error {
	if name == "" || factory == nil {
		return fmt.Errorf("themis: cluster registration needs a name and a factory")
	}
	clusterMu.Lock()
	defer clusterMu.Unlock()
	if _, dup := clusterRegistry[name]; dup {
		return fmt.Errorf("themis: cluster %q already registered", name)
	}
	clusterRegistry[name] = clusterEntry{description: description, factory: factory}
	return nil
}

// Clusters lists the registered cluster names, sorted.
func Clusters() []string {
	clusterMu.RLock()
	defer clusterMu.RUnlock()
	names := make([]string, 0, len(clusterRegistry))
	for name := range clusterRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DescribeCluster returns a registered cluster's one-line description.
func DescribeCluster(name string) (string, error) {
	clusterMu.RLock()
	defer clusterMu.RUnlock()
	entry, ok := clusterRegistry[name]
	if !ok {
		return "", fmt.Errorf("themis: unknown cluster %q (registered: %v)", name, clusterNamesLocked())
	}
	return entry.description, nil
}

// Cluster builds a registered topology by name: ClusterSim ("sim"),
// ClusterTestbed ("testbed"), ClusterSimFabric ("sim-fabric") or anything
// added via RegisterCluster. Custom one-off topologies are built with
// ClusterConfig.Build or BuildTopology.
func Cluster(name string) (*Topology, error) {
	clusterMu.RLock()
	entry, ok := clusterRegistry[name]
	clusterMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("themis: unknown cluster %q (registered: %v)", name, Clusters())
	}
	return entry.factory()
}

// clusterNamesLocked lists registered names while clusterMu is held.
func clusterNamesLocked() []string {
	names := make([]string, 0, len(clusterRegistry))
	for name := range clusterRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildTopology constructs a hierarchical topology from a TopologySpec —
// regions of fabric domains of racks of machine groups. Machine, rack and
// domain IDs are assigned densely in declaration order, so the same spec
// always yields the same topology; domain names in the spec become the names
// trace placement blocks and job affinities resolve against.
func BuildTopology(spec TopologySpec) (*Topology, error) {
	tree, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("themis: %w", err)
	}
	return tree.Topology(), nil
}

// LiftTopology builds the indexed hierarchy view over a topology: regions,
// fabric domains, per-level capacities and flavor inventories. Flat
// topologies (one domain per rack, built by ClusterConfig) lift to a
// single-region tree whose domains mirror their racks.
func LiftTopology(topo *Topology) *TopologyTree {
	return topology.Lift(topo)
}

// simFabricSpec lays the ClusterSim fleet out into three named fabric
// domains: two homogeneous P100 training pods and one mixed pod holding the
// V100 and K80 fleets.
func simFabricSpec() TopologySpec {
	p100Rack := topology.RackSpec{Machines: []topology.MachineGroup{
		{Count: 12, GPUs: 4, SlotSize: 2, Flavor: cluster.GPUTypeP100},
	}}
	return TopologySpec{
		Name: ClusterSimFabric,
		Regions: []topology.RegionSpec{{
			Name: "default",
			Domains: []topology.DomainSpec{
				{Name: "pod-a", Racks: []topology.RackSpec{p100Rack, p100Rack}}, // 96 GPUs
				{Name: "pod-b", Racks: []topology.RackSpec{p100Rack, p100Rack}}, // 96 GPUs
				{Name: "pod-c", Racks: []topology.RackSpec{ // 64 GPUs
					{Machines: []topology.MachineGroup{{Count: 24, GPUs: 2, SlotSize: 2, Flavor: cluster.GPUTypeV100}}},
					{Machines: []topology.MachineGroup{{Count: 16, GPUs: 1, SlotSize: 1, Flavor: cluster.GPUTypeK80}}},
				}},
			},
		}},
	}
}

// The paper's clusters (and the hierarchical variant) ship pre-registered.
func init() {
	mustRegister := func(name, description string, f ClusterFactory) {
		if err := RegisterCluster(name, description, f); err != nil {
			panic(err)
		}
	}
	mustRegister(ClusterSim, "the paper's 256-GPU heterogeneous simulated cluster (§8.1)",
		func() (*Topology, error) { return cluster.SimulationCluster(), nil })
	mustRegister(ClusterTestbed, "the paper's 50-GPU Azure testbed: 20 K80/M60 machines (§8.1)",
		func() (*Topology, error) { return cluster.TestbedCluster(), nil })
	mustRegister(ClusterSimFabric, "the 256-GPU simulated fleet across three fabric domains (pods)",
		func() (*Topology, error) { return BuildTopology(simFabricSpec()) })
}
