package themis

import (
	"fmt"

	"themis/internal/cluster"
)

// Built-in cluster names accepted by Cluster and WithCluster.
const (
	// ClusterSim is the paper's 256-GPU heterogeneous simulated cluster.
	ClusterSim = "sim"
	// ClusterTestbed is the paper's 50-GPU Azure testbed topology.
	ClusterTestbed = "testbed"
)

// Cluster returns one of the built-in topologies the paper evaluates on:
// ClusterSim ("sim") or ClusterTestbed ("testbed"). Custom topologies are
// built with ClusterConfig.Build.
func Cluster(name string) (*Topology, error) {
	switch name {
	case ClusterSim:
		return cluster.SimulationCluster(), nil
	case ClusterTestbed:
		return cluster.TestbedCluster(), nil
	default:
		return nil, fmt.Errorf("themis: unknown cluster %q (want %q or %q)", name, ClusterSim, ClusterTestbed)
	}
}
