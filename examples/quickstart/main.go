// Quickstart: build a small GPU cluster, submit a handful of ML apps, and
// schedule them with Themis's finish-time-fair auctions. Prints the fairness
// and efficiency metrics of the run.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"themis"
)

func main() {
	// A small cluster: 8 machines with 4 GPUs each, two racks.
	topo, err := themis.ClusterConfig{
		MachineSpecs:    []themis.MachineSpec{{Count: 8, GPUs: 4, SlotSize: 2, GPU: themis.GPUTypeP100}},
		MachinesPerRack: 4,
	}.Build()
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic workload: 10 hyperparameter-exploration apps, a 60:40 mix
	// of compute- and network-intensive model families, arriving every ~5
	// minutes on average.
	spec := themis.DefaultWorkloadSpec()
	spec.NumApps = 10
	spec.MeanInterArrival = 5
	spec.JobsPerAppMedian = 4
	spec.MaxJobsPerApp = 8
	spec.DurationScale = 0.25

	// Themis with the paper's defaults: fairness knob f = 0.8, 20-minute
	// GPU leases, truthful partial-allocation auctions.
	s, err := themis.NewSimulation(
		themis.WithTopology(topo),
		themis.WithWorkload(spec),
		themis.WithPolicy("themis"),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	sum := rep.Summary
	fmt.Printf("Scheduled %d apps on %d GPUs with %s\n", sum.AppsTotal, topo.TotalGPUs(), sum.Policy)
	fmt.Printf("  makespan:               %.1f minutes\n", sum.Makespan)
	fmt.Printf("  worst finish-time ρ:    %.2f\n", sum.MaxFairness)
	fmt.Printf("  median finish-time ρ:   %.2f\n", sum.MedianFairness)
	fmt.Printf("  Jain's fairness index:  %.3f\n", sum.JainsIndex)
	fmt.Printf("  mean completion time:   %.1f minutes\n", sum.MeanCompletionTime)
	fmt.Printf("  mean placement score:   %.2f\n", sum.MeanPlacementScore)
	fmt.Printf("  cluster GPU time:       %.0f GPU-minutes\n", sum.GPUTime)

	fmt.Println("\nPer-app finish-time fairness (ρ = shared / ideal running time):")
	for _, rec := range rep.Finished() {
		fmt.Printf("  %-8s %-12s rho=%.2f completion=%.0f min placement=%.2f\n",
			rec.App, rec.Model, rec.FinishTimeFairness, rec.CompletionTime, rec.PlacementScore)
	}

	if st := rep.Auction; st != nil && st.Auctions > 0 {
		fmt.Printf("\nArbiter ran %d auctions over %d offered GPUs (%.1f ms mean).\n",
			st.Auctions, st.GPUsAuctioned,
			float64(st.TotalAuctionTime.Milliseconds())/float64(st.Auctions))
	}
}
