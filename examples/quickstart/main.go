// Quickstart: build a small GPU cluster, submit a handful of ML apps, and
// schedule them with Themis's finish-time-fair auctions. Prints the fairness
// and efficiency metrics of the run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/metrics"
	"themis/internal/schedulers"
	"themis/internal/sim"
	"themis/internal/workload"
)

func main() {
	// A small cluster: 8 machines with 4 GPUs each, two racks.
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 8, GPUs: 4, SlotSize: 2, GPU: cluster.GPUTypeP100}},
		MachinesPerRack: 4,
	}.Build()
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic workload: 10 hyperparameter-exploration apps, a 60:40 mix
	// of compute- and network-intensive model families, arriving every ~5
	// minutes on average.
	cfg := workload.DefaultGeneratorConfig()
	cfg.NumApps = 10
	cfg.MeanInterArrival = 5
	cfg.JobsPerAppMedian = 4
	cfg.MaxJobsPerApp = 8
	cfg.DurationScale = 0.25
	apps, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Themis with the paper's defaults: fairness knob f = 0.8, 20-minute
	// GPU leases, truthful partial-allocation auctions.
	policy := schedulers.NewThemis(core.DefaultConfig())

	s, err := sim.New(sim.Config{
		Topology:        topo,
		Apps:            apps,
		Policy:          policy,
		LeaseDuration:   20,
		RestartOverhead: sim.DefaultRestartOverhead,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	sum := metrics.Summarize(res)
	fmt.Printf("Scheduled %d apps on %d GPUs with %s\n", sum.AppsTotal, topo.TotalGPUs(), sum.Policy)
	fmt.Printf("  makespan:               %.1f minutes\n", sum.Makespan)
	fmt.Printf("  worst finish-time ρ:    %.2f\n", sum.MaxFairness)
	fmt.Printf("  median finish-time ρ:   %.2f\n", sum.MedianFairness)
	fmt.Printf("  Jain's fairness index:  %.3f\n", sum.JainsIndex)
	fmt.Printf("  mean completion time:   %.1f minutes\n", sum.MeanCompletionTime)
	fmt.Printf("  mean placement score:   %.2f\n", sum.MeanPlacementScore)
	fmt.Printf("  cluster GPU time:       %.0f GPU-minutes\n", sum.GPUTime)

	fmt.Println("\nPer-app finish-time fairness (ρ = shared / ideal running time):")
	for _, rec := range res.Finished() {
		fmt.Printf("  %-8s %-12s rho=%.2f completion=%.0f min placement=%.2f\n",
			rec.App, rec.Model, rec.FinishTimeFairness, rec.CompletionTime, rec.PlacementScore)
	}

	if arb := policy.Arbiter(); arb != nil {
		fmt.Printf("\nArbiter ran %d auctions over %d offered GPUs (%.1f ms mean).\n",
			arb.Stats.Auctions, arb.Stats.GPUsAuctioned,
			float64(arb.Stats.TotalAuctionTime.Milliseconds())/float64(arb.Stats.Auctions))
	}
}
