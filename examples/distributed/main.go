// Distributed example: runs the Arbiter and three app Agents as separate
// HTTP servers on localhost (the same protocol cmd/arbiterd and cmd/agentd
// speak), registers the agents, and drives a few auction rounds — showing
// the full probe → offer → bid → allocate loop over the network.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"themis"
	"themis/daemon"
)

// serve starts an HTTP handler on a free localhost port and returns its URL.
func serve(handler http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, handler) // runs until the process exits
	}()
	return "http://" + ln.Addr().String(), nil
}

func makeApp(id string, model string, trials int, work float64) (*themis.App, error) {
	profile, err := themis.Model(model)
	if err != nil {
		return nil, err
	}
	var jobs []*themis.Job
	for i := 0; i < trials; i++ {
		j := themis.NewJob(themis.AppID(id), i, work, 4)
		j.Quality = float64(i) / float64(trials+1)
		j.Seed = int64(i + 17)
		jobs = append(jobs, j)
	}
	return themis.NewApp(themis.AppID(id), 0, profile, jobs)
}

func main() {
	topo, err := themis.Cluster(themis.ClusterTestbed)
	if err != nil {
		log.Fatal(err)
	}

	// The Arbiter daemon. The clock is accelerated so each wall-clock second
	// is one scheduling minute and leases visibly expire during the demo.
	arbServer, err := daemon.NewArbiterServer(topo, daemon.ArbiterConfig{FairnessKnob: 0.6, LeaseDuration: 3})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	arbServer.Clock = func() float64 { return time.Since(start).Seconds() }
	arbiterURL, err := serve(arbServer.Handler())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("arbiter listening on", arbiterURL)

	// Three app Agents with different placement sensitivities and demands.
	type appSpec struct {
		id     string
		model  string
		trials int
		work   float64
	}
	specs := []appSpec{
		{"speech-team", "DeepSpeech", 6, 300},
		{"vision-team", "VGG16", 8, 400},
		{"ranking-team", "ResNet50", 4, 200},
	}
	ctx := context.Background()
	arbClient := daemon.NewArbiterClient(arbiterURL)
	for _, spec := range specs {
		app, err := makeApp(spec.id, spec.model, spec.trials, spec.work)
		if err != nil {
			log.Fatal(err)
		}
		agent, err := daemon.NewAgentServer(topo, app)
		if err != nil {
			log.Fatal(err)
		}
		url, err := serve(agent.Handler())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := arbClient.Register(ctx, string(app.ID), url, app.MaxParallelism()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("agent %-13s listening on %s (demand %d GPUs, %s)\n", app.ID, url, app.MaxParallelism(), app.Profile.Name)
	}

	// Drive a few auction rounds, letting the accelerated clock advance so
	// leases expire and GPUs are re-offered.
	for round := 1; round <= 4; round++ {
		res, err := arbClient.TriggerAuction(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nauction round %d at t=%.1f min: %d GPUs offered\n", round, res.Now, res.Offered)
		for app, alloc := range res.Decisions {
			a, _ := alloc.ToAlloc()
			fmt.Printf("  %-13s won %2d GPUs: %s\n", app, a.Total(), a)
		}
		status, err := arbClient.Status(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cluster: %d/%d GPUs free, %d active leases, %d auctions so far\n",
			status.FreeGPUs, status.TotalGPUs, status.ActiveLeases, status.Auctions)
		time.Sleep(1500 * time.Millisecond)
	}
	fmt.Println("\ndone — the same flow runs across machines with cmd/arbiterd and cmd/agentd")
}
