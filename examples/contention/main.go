// Contention study: sweeps the cluster contention factor (1×, 2×, 4×) and
// compares Themis against the Tiresias baseline on the sharing-incentive
// property — whether the worst-off app's finish-time fairness stays close to
// the contention level (the ideal) as the cluster gets busier.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/metrics"
	"themis/internal/schedulers"
	"themis/internal/sim"
	"themis/internal/workload"
)

func main() {
	topo := cluster.TestbedCluster() // the paper's 50-GPU testbed topology

	fmt.Println("contention  scheme     max_rho  median_rho  jains  mean_jct_min")
	for _, contention := range []float64{1, 2, 4} {
		for _, mk := range []func() sim.Policy{
			func() sim.Policy { return schedulers.NewThemis(core.DefaultConfig()) },
			func() sim.Policy { return schedulers.NewTiresias() },
		} {
			policy := mk()
			cfg := workload.DefaultGeneratorConfig()
			cfg.NumApps = 16
			cfg.Seed = 11
			cfg.JobsPerAppMedian = 5
			cfg.MaxJobsPerApp = 10
			cfg.DurationScale = 0.2
			cfg.MeanInterArrival = 10
			cfg.ContentionFactor = contention
			apps, err := workload.Generate(cfg)
			if err != nil {
				log.Fatal(err)
			}
			s, err := sim.New(sim.Config{
				Topology:        topo,
				Apps:            apps,
				Policy:          policy,
				LeaseDuration:   15,
				RestartOverhead: 0.5,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				log.Fatal(err)
			}
			sum := metrics.Summarize(res)
			fmt.Printf("%9.0fx  %-9s  %7.2f  %10.2f  %5.3f  %12.1f\n",
				contention, sum.Policy, sum.MaxFairness, sum.MedianFairness, sum.JainsIndex, sum.MeanCompletionTime)
		}
	}
	fmt.Println("\nSharing incentive holds when max_rho stays near the contention level;")
	fmt.Println("Themis's long-term finish-time fairness keeps the worst-off app's rho")
	fmt.Println("bounded while least-attained-service lets it grow with contention.")
}
