// Contention study: sweeps the cluster contention factor (1×, 2×, 4×) and
// compares Themis against the Tiresias baseline on the sharing-incentive
// property — whether the worst-off app's finish-time fairness stays close to
// the contention level (the ideal) as the cluster gets busier.
//
//	go run ./examples/contention
package main

import (
	"context"
	"fmt"
	"log"

	"themis"
)

func main() {
	fmt.Println("contention  scheme     max_rho  median_rho  jains  mean_jct_min")
	for _, contention := range []float64{1, 2, 4} {
		for _, policy := range []string{"themis", "tiresias"} {
			spec := themis.DefaultWorkloadSpec()
			spec.NumApps = 16
			spec.Seed = 11
			spec.JobsPerAppMedian = 5
			spec.MaxJobsPerApp = 10
			spec.DurationScale = 0.2
			spec.MeanInterArrival = 10
			spec.ContentionFactor = contention

			s, err := themis.NewSimulation(
				themis.WithCluster(themis.ClusterTestbed), // the paper's 50-GPU testbed
				themis.WithPolicy(policy),
				themis.WithWorkload(spec),
				themis.WithLeaseDuration(15),
				themis.WithRestartOverhead(0.5),
			)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := s.Run(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			sum := rep.Summary
			fmt.Printf("%9.0fx  %-9s  %7.2f  %10.2f  %5.3f  %12.1f\n",
				contention, sum.Policy, sum.MaxFairness, sum.MedianFairness, sum.JainsIndex, sum.MeanCompletionTime)
		}
	}
	fmt.Println("\nSharing incentive holds when max_rho stays near the contention level;")
	fmt.Println("Themis's long-term finish-time fairness keeps the worst-off app's rho")
	fmt.Println("bounded while least-attained-service lets it grow with contention.")
}
