// Scenario-library tour: lists the registered workload scenarios, then fans
// every scenario × {Themis, Tiresias} across the parallel sweep engine and
// compares the schedulers' fairness and efficiency per workload family —
// the evaluation axis the scenario subsystem opens beyond the paper's single
// production mix.
//
//	go run ./examples/scenarios
package main

import (
	"context"
	"fmt"
	"log"

	"themis"
	"themis/experiments"
)

func main() {
	fmt.Println("registered scenarios:")
	for _, name := range themis.Scenarios() {
		desc, err := themis.DescribeScenario(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %s\n", name, desc)
	}
	fmt.Println()

	rows, err := experiments.ScenarioStudy(context.Background(), 0,
		[]string{"themis", "tiresias"},
		nil, // full scenario library
		[]int64{11},
		themis.ScenarioParams{NumApps: 12, DurationScale: 0.2},
		themis.WithCluster(themis.ClusterTestbed),
		themis.WithHorizon(20000),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scenario       scheme     max_rho  jains  mean_jct_min  gpu_time")
	for _, row := range rows {
		s := row.Report.Summary
		fmt.Printf("%-14s %-10s %7.2f  %5.3f  %12.1f  %8.0f\n",
			row.Scenario, row.Policy, s.MaxFairness, s.JainsIndex, s.MeanCompletionTime, s.GPUTime)
	}
}
