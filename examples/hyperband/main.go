// Hyperband example: a hyperparameter-exploration app (16 trials of a VGG16
// model, successively halved by HyperBand) shares a cluster with background
// apps. The same workload is scheduled by Themis and by the
// least-attained-service baseline (Tiresias) so the effect of finish-time
// fair, placement-aware scheduling on the exploration is visible.
//
//	go run ./examples/hyperband
package main

import (
	"fmt"
	"log"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/metrics"
	"themis/internal/placement"
	"themis/internal/schedulers"
	"themis/internal/sim"
	"themis/internal/workload"
)

// buildWorkload creates the hyperparameter-exploration app plus background
// load. It is called once per scheduler so each run gets fresh state.
func buildWorkload() []*workload.App {
	var apps []*workload.App

	// The app under study: 16 VGG16 trials, 4 GPUs each, exploring learning
	// rates; HyperBand will keep halving until one survivor trains fully.
	var trials []*workload.Job
	for i := 0; i < 16; i++ {
		j := workload.NewJob("hyperband-app", i, 360, 4) // 360 serial GPU-minutes per trial
		j.Quality = float64(i) / 16
		j.Seed = int64(100 + i)
		j.TotalIterations = 1000
		trials = append(trials, j)
	}
	apps = append(apps, workload.NewApp("hyperband-app", 10, placement.VGG16, trials))

	// Background apps that keep the cluster contended.
	for b := 0; b < 5; b++ {
		var jobs []*workload.Job
		for i := 0; i < 4; i++ {
			j := workload.NewJob(workload.AppID(fmt.Sprintf("bg-%d", b)), i, 240, 4)
			j.Quality = float64(i) / 4
			j.Seed = int64(200 + b*10 + i)
			jobs = append(jobs, j)
		}
		profile := placement.ResNet50
		if b%2 == 0 {
			profile = placement.InceptionV3
		}
		apps = append(apps, workload.NewApp(workload.AppID(fmt.Sprintf("bg-%d", b)), float64(b*8), profile, jobs))
	}
	return apps
}

func run(policy sim.Policy) (*sim.Result, error) {
	topo, err := cluster.Config{
		MachineSpecs:    []cluster.MachineSpec{{Count: 10, GPUs: 4, SlotSize: 2, GPU: cluster.GPUTypeP100}},
		MachinesPerRack: 5,
	}.Build()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sim.Config{
		Topology:        topo,
		Apps:            buildWorkload(),
		Policy:          policy,
		LeaseDuration:   15,
		RestartOverhead: 0.75,
	})
	if err != nil {
		return nil, err
	}
	return s.Run()
}

func main() {
	for _, policy := range []sim.Policy{
		schedulers.NewThemis(core.DefaultConfig()),
		schedulers.NewTiresias(),
	} {
		res, err := run(policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", policy.Name())
		var study *sim.AppRecord
		for i := range res.Apps {
			if res.Apps[i].App == "hyperband-app" {
				study = &res.Apps[i]
			}
		}
		if study == nil {
			log.Fatal("hyperband app record missing")
		}
		fmt.Printf("hyperband app: completion %.0f min, rho %.2f, %d/%d trials terminated early, placement %.2f\n",
			study.CompletionTime, study.FinishTimeFairness, study.JobsKilled, study.JobsTotal, study.PlacementScore)
		fmt.Printf("cluster:       worst rho %.2f, Jain's index %.3f, GPU time %.0f GPU-min\n",
			metrics.MaxFairness(res), metrics.JainsIndexOf(res), metrics.GPUTime(res))

		fmt.Println("allocation timeline of the hyperband app (time → GPUs):")
		events := res.TimelineFor("hyperband-app")
		for i, e := range events {
			if i > 0 && e.GPUs == events[i-1].GPUs {
				continue // only print changes
			}
			fmt.Printf("  t=%6.1f  %d GPUs\n", e.Time, e.GPUs)
		}
		fmt.Println()
	}
}
