// Hyperband example: a hyperparameter-exploration app (16 trials of a VGG16
// model, successively halved by HyperBand) shares a cluster with background
// apps. The same workload is scheduled by Themis and by the
// least-attained-service baseline (Tiresias) so the effect of finish-time
// fair, placement-aware scheduling on the exploration is visible.
//
//	go run ./examples/hyperband
package main

import (
	"context"
	"fmt"
	"log"

	"themis"
)

// buildWorkload creates the hyperparameter-exploration app plus background
// load. It is called once per scheduler so each run gets fresh state.
func buildWorkload() ([]*themis.App, error) {
	var apps []*themis.App

	vgg16, err := themis.Model("VGG16")
	if err != nil {
		return nil, err
	}
	resnet50, err := themis.Model("ResNet50")
	if err != nil {
		return nil, err
	}
	inception, err := themis.Model("Inceptionv3")
	if err != nil {
		return nil, err
	}

	// The app under study: 16 VGG16 trials, 4 GPUs each, exploring learning
	// rates; HyperBand will keep halving until one survivor trains fully.
	var trials []*themis.Job
	for i := 0; i < 16; i++ {
		j := themis.NewJob("hyperband-app", i, 360, 4) // 360 serial GPU-minutes per trial
		j.Quality = float64(i) / 16
		j.Seed = int64(100 + i)
		j.TotalIterations = 1000
		trials = append(trials, j)
	}
	study, err := themis.NewApp("hyperband-app", 10, vgg16, trials)
	if err != nil {
		return nil, err
	}
	apps = append(apps, study)

	// Background apps that keep the cluster contended.
	for b := 0; b < 5; b++ {
		id := themis.AppID(fmt.Sprintf("bg-%d", b))
		var jobs []*themis.Job
		for i := 0; i < 4; i++ {
			j := themis.NewJob(id, i, 240, 4)
			j.Quality = float64(i) / 4
			j.Seed = int64(200 + b*10 + i)
			jobs = append(jobs, j)
		}
		profile := resnet50
		if b%2 == 0 {
			profile = inception
		}
		bg, err := themis.NewApp(id, float64(b*8), profile, jobs)
		if err != nil {
			return nil, err
		}
		apps = append(apps, bg)
	}
	return apps, nil
}

func run(policy string) (*themis.Report, error) {
	topo, err := themis.ClusterConfig{
		MachineSpecs:    []themis.MachineSpec{{Count: 10, GPUs: 4, SlotSize: 2, GPU: themis.GPUTypeP100}},
		MachinesPerRack: 5,
	}.Build()
	if err != nil {
		return nil, err
	}
	apps, err := buildWorkload()
	if err != nil {
		return nil, err
	}
	s, err := themis.NewSimulation(
		themis.WithTopology(topo),
		themis.WithApps(apps...),
		themis.WithPolicy(policy),
		themis.WithLeaseDuration(15),
		themis.WithRestartOverhead(0.75),
	)
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background())
}

func main() {
	for _, policy := range []string{"themis", "tiresias"} {
		rep, err := run(policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", rep.Summary.Policy)
		var study *themis.AppRecord
		for i := range rep.Apps {
			if rep.Apps[i].App == "hyperband-app" {
				study = &rep.Apps[i]
			}
		}
		if study == nil {
			log.Fatal("hyperband app record missing")
		}
		fmt.Printf("hyperband app: completion %.0f min, rho %.2f, %d/%d trials terminated early, placement %.2f\n",
			study.CompletionTime, study.FinishTimeFairness, study.JobsKilled, study.JobsTotal, study.PlacementScore)
		fmt.Printf("cluster:       worst rho %.2f, Jain's index %.3f, GPU time %.0f GPU-min\n",
			rep.Summary.MaxFairness, rep.Summary.JainsIndex, rep.Summary.GPUTime)

		fmt.Println("allocation timeline of the hyperband app (time → GPUs):")
		events := rep.TimelineFor("hyperband-app")
		for i, e := range events {
			if i > 0 && e.GPUs == events[i-1].GPUs {
				continue // only print changes
			}
			fmt.Printf("  t=%6.1f  %d GPUs\n", e.Time, e.GPUs)
		}
		fmt.Println()
	}
}
