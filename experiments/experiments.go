// Package experiments is the public face of the paper's evaluation harness:
// one constructor per figure of Themis's §8, each returning the data series
// the figure plots. It re-exports the internal experiment engine so
// downstream tools (cmd/expdriver, plotting scripts) depend only on the
// public module surface.
package experiments

import (
	"context"
	"fmt"

	"themis"
	"themis/internal/experiments"
	"themis/internal/sim"
)

// Options control the scale and parameters of the experiment runs,
// including the sweep engine's worker-pool size (Options.Workers).
type Options = experiments.Options

// RunSpec describes one simulation run within a Sweep grid.
type RunSpec = experiments.RunSpec

// Sweep fans a grid of simulation runs across a bounded worker pool
// (workers <= 0 uses GOMAXPROCS) with deterministic, spec-aligned results.
// Every figure constructor in this package runs its grid through Sweep.
// RunSpec's fields are spelled in internal types, but they are the same
// types the root facade aliases (themis.Topology, themis.SchedulerPolicy,
// themis.App, themis.Tuner), so downstream code builds specs from the
// public names. Most studies over the public Report type are simpler with
// themis.RunSweep.
func Sweep(ctx context.Context, workers int, specs []RunSpec) ([]*sim.Result, error) {
	return experiments.Sweep(ctx, workers, specs)
}

// Result row/series types, one per figure.
type (
	Figure1Result = experiments.Figure1Result
	Figure2Row    = experiments.Figure2Row
	Figure4aRow   = experiments.Figure4aRow
	Figure4bRow   = experiments.Figure4bRow
	Figure4cRow   = experiments.Figure4cRow
	Figure5aRow   = experiments.Figure5aRow
	Figure5bRow   = experiments.Figure5bRow
	FigureCDF     = experiments.FigureCDF
	Figure8Result = experiments.Figure8Result
	Figure9aRow   = experiments.Figure9aRow
	Figure9bRow   = experiments.Figure9bRow
	Figure10Row   = experiments.Figure10Row
	Figure11Row   = experiments.Figure11Row
	// Comparison holds the four-scheme testbed comparison behind
	// Figures 5–7, with per-figure accessor methods.
	Comparison = experiments.Comparison
)

// SchemeOrder is the presentation order used by the paper's comparison plots.
var SchemeOrder = experiments.SchemeOrder

// Default returns the paper-fidelity options (§8.1).
func Default() Options { return experiments.Default() }

// Quick returns options scaled down for fast benchmarks and CI while
// preserving every figure's qualitative shape.
func Quick() Options { return experiments.Quick() }

// Figure1 regenerates the trace task-duration CDF.
func Figure1(opts Options) (Figure1Result, error) { return experiments.Figure1(opts) }

// Figure2 regenerates the placement-sensitivity throughput table.
func Figure2() []Figure2Row { return experiments.Figure2() }

// Figure4a sweeps the fairness knob and reports finish-time fairness.
func Figure4a(opts Options) ([]Figure4aRow, error) { return experiments.Figure4a(opts) }

// Figure4b sweeps the fairness knob and reports cluster GPU time.
func Figure4b(opts Options) ([]Figure4bRow, error) { return experiments.Figure4b(opts) }

// Figure4c sweeps the lease duration and reports max finish-time fairness.
func Figure4c(opts Options) ([]Figure4cRow, error) { return experiments.Figure4c(opts) }

// RunComparison runs the four-scheme testbed comparison behind Figures 5–7.
func RunComparison(opts Options) (*Comparison, error) { return experiments.RunComparison(opts) }

// Figure8 reproduces the short-vs-long app allocation timelines.
func Figure8(opts Options) (Figure8Result, error) { return experiments.Figure8(opts) }

// Figure9a sweeps the network-intensive fraction and reports the fairness
// improvement of Themis over Tiresias.
func Figure9a(opts Options) ([]Figure9aRow, error) { return experiments.Figure9a(opts) }

// Figure9b sweeps the network-intensive fraction and reports GPU time per
// scheme.
func Figure9b(opts Options) ([]Figure9bRow, error) { return experiments.Figure9b(opts) }

// Figure10 sweeps the contention factor and reports Jain's index.
func Figure10(opts Options) ([]Figure10Row, error) { return experiments.Figure10(opts) }

// Figure11 sweeps the bid-valuation error and reports max fairness.
func Figure11(opts Options) ([]Figure11Row, error) { return experiments.Figure11(opts) }

// TraceStudyRow is one cell of a TraceStudy: a policy replaying the trace,
// with the run's full Report.
type TraceStudyRow struct {
	Policy string
	Report *themis.Report
}

// TraceStudy replays one captured or imported trace under each named policy
// through the parallel sweep engine — the paper's §8.1 replay methodology
// over any trace file, including v2 traces whose placement blocks carry
// locality constraints (each run rematerialises fresh apps from the trace,
// so runs never share mutable state). An empty policy list defaults to every
// registered policy. Rows come back in policy order regardless of worker
// count.
func TraceStudy(ctx context.Context, workers int, tr themis.Trace, policies []string, base ...themis.Option) ([]TraceStudyRow, error) {
	if len(policies) == 0 {
		policies = themis.Policies()
	}
	specs := make([]themis.SweepSpec, 0, len(policies))
	for _, policy := range policies {
		opts := append(append([]themis.Option{}, base...), themis.WithPolicy(policy), themis.WithTrace(tr))
		specs = append(specs, themis.SweepSpec{Name: policy, Options: opts})
	}
	results, err := themis.RunSweep(ctx, workers, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: trace study: %w", err)
	}
	rows := make([]TraceStudyRow, len(results))
	for i, res := range results {
		rows[i] = TraceStudyRow{Policy: policies[i], Report: res.Report}
	}
	return rows, nil
}

// ScenarioStudyRow is one cell of a ScenarioStudy: a policy replaying a
// registered scenario under one seed, with the run's full Report.
type ScenarioStudyRow struct {
	Policy   string
	Scenario string
	Seed     int64
	Report   *themis.Report
}

// ScenarioStudy runs every policy × scenario × seed cell of the scenario
// library through the parallel sweep engine — the evaluation the paper could
// not run: its schedulers over workload families beyond the production mix.
// Policies and scenarios name registry entries (themis.Policies,
// themis.Scenarios); empty axes default to the Themis policy, the full
// scenario library and seed 1. Rows come back policy-major in deterministic
// order regardless of worker count.
func ScenarioStudy(ctx context.Context, workers int, policies, scenarios []string, seeds []int64, params themis.ScenarioParams, base ...themis.Option) ([]ScenarioStudyRow, error) {
	if len(policies) == 0 {
		policies = []string{"themis"}
	}
	if len(scenarios) == 0 {
		scenarios = themis.Scenarios()
	}
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	specs, err := themis.Grid{
		Policies:  policies,
		Scenarios: scenarios,
		Seeds:     seeds,
		Params:    params,
		Base:      base,
	}.Specs()
	if err != nil {
		return nil, fmt.Errorf("experiments: scenario study: %w", err)
	}
	results, err := themis.RunSweep(ctx, workers, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: scenario study: %w", err)
	}
	rows := make([]ScenarioStudyRow, 0, len(results))
	i := 0
	for _, policy := range policies {
		for _, scenario := range scenarios {
			for _, seed := range seeds {
				rows = append(rows, ScenarioStudyRow{
					Policy:   policy,
					Scenario: scenario,
					Seed:     seed,
					Report:   results[i].Report,
				})
				i++
			}
		}
	}
	return rows, nil
}
