package experiments

import (
	"fmt"
	"time"

	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/rpc"
	"themis/internal/workload"
)

// ShardedLoadOptions sizes the sharded-arbiter load study.
type ShardedLoadOptions struct {
	// Agents is the number of simulated in-process apps (default 100000).
	Agents int
	// Shards is the sharded deployment's arbiter count (default 8).
	Shards int
	// Machines, GPUsPerMachine and MachinesPerRack describe the cluster
	// (default 160 x 8 GPUs, 8 machines per rack: 1280 GPUs).
	Machines        int
	GPUsPerMachine  int
	MachinesPerRack int
	// DemandingApps is how many apps actually want GPUs (default 1000). Their
	// demands sum exactly to cluster capacity — full subscription — so both
	// deployments must end with every demand met and parity is exact, while
	// the remaining Agents-DemandingApps idle apps still cost a ρ probe per
	// round (the linear term both deployments pay). The default is sized so
	// winner determination dominates the round: the dense-vector solver made
	// individual solves cheap enough that smaller auctions are drowned out by
	// the O(Agents) probe cost, which sharding only divides, not squares.
	DemandingApps int
	// FairnessKnob is f. The default makes the worst DemandingApps/Agents
	// fraction participants, i.e. exactly the demanding stratum bids —
	// matching the paper's observation that only the worst-off fraction
	// bids.
	FairnessKnob float64
	// Rounds is the number of full-reclaim auction rounds timed (default 2).
	Rounds int
	// LeaseDuration in scheduling minutes (default 20).
	LeaseDuration float64
}

func (o ShardedLoadOptions) withDefaults() ShardedLoadOptions {
	if o.Agents <= 0 {
		o.Agents = 100000
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Machines <= 0 {
		o.Machines = 160
	}
	if o.GPUsPerMachine <= 0 {
		o.GPUsPerMachine = 8
	}
	if o.MachinesPerRack <= 0 {
		o.MachinesPerRack = 8
	}
	if o.DemandingApps <= 0 {
		o.DemandingApps = 1000
	}
	if o.DemandingApps > o.Agents {
		o.DemandingApps = o.Agents
	}
	if o.FairnessKnob <= 0 {
		o.FairnessKnob = 1 - float64(o.DemandingApps)/float64(o.Agents)
	}
	if o.Rounds <= 0 {
		o.Rounds = 2
	}
	if o.LeaseDuration <= 0 {
		o.LeaseDuration = 20
	}
	return o
}

// ShardedLoadResult reports the single-vs-sharded comparison: how fast each
// deployment turns over auction rounds at the configured agent count, and
// how closely their allocations agree.
type ShardedLoadResult struct {
	Agents int
	Shards int
	Rounds int

	// SingleSeconds / ShardedSeconds: wall-clock time for all rounds.
	SingleSeconds  float64
	ShardedSeconds float64
	// Throughput in agent-rounds per second.
	SingleThroughput  float64
	ShardedThroughput float64
	// Speedup = SingleSeconds / ShardedSeconds.
	Speedup float64
	// MaxRoundSeconds is the slowest single round (scheduling latency bound).
	MaxRoundSecondsSingle  float64
	MaxRoundSecondsSharded float64

	// Granted totals after the final round (both must equal cluster capacity
	// at full subscription — every demand met, no GPU idle).
	SingleGranted  int
	ShardedGranted int
	// ParityL1 is the L1 distance between the two deployments' per-app GPU
	// holdings; ParityFrac normalises it by the granted total.
	ParityL1   int
	ParityFrac float64

	// SinglePhases / ShardedPhases break each deployment's round time into
	// the auction's phases, cumulative across rounds (and shards). The gap
	// between a deployment's wall-clock seconds and its phase sum is the
	// serving layer: reclaim, grant, aggregation.
	SinglePhases  PhaseSeconds
	ShardedPhases PhaseSeconds
}

// PhaseSeconds is the cumulative in-auction time of one deployment, split
// the way the arbiter's round telemetry splits it. Reconcile is only nonzero
// for the sharded deployment (its cross-shard leftover pass).
type PhaseSeconds struct {
	Probe, Bid, Solve, Leftover, Reconcile float64
}

func (p PhaseSeconds) String() string {
	s := fmt.Sprintf("probe %.3fs, bid %.3fs, solve %.3fs, leftover %.3fs", p.Probe, p.Bid, p.Solve, p.Leftover)
	if p.Reconcile > 0 {
		s += fmt.Sprintf(", reconcile %.3fs", p.Reconcile)
	}
	return s
}

// Summary renders the study outcome with the per-phase breakdown — where
// each deployment's round time actually went, not just how long it took.
func (r ShardedLoadResult) Summary() string {
	return fmt.Sprintf(
		"%d agents, %d rounds: single %.3fs (%s) vs %d shards %.3fs (%s), speedup %.1fx, granted %d/%d, parity L1 %d (%.1f%%)",
		r.Agents, r.Rounds,
		r.SingleSeconds, r.SinglePhases,
		r.Shards, r.ShardedSeconds, r.ShardedPhases,
		r.Speedup, r.SingleGranted, r.ShardedGranted, r.ParityL1, 100*r.ParityFrac)
}

// loadBidder is the study's simulated app: deterministic ρ from its index
// (later indexes are more starved), demand a small gang-free GPU count. It is
// intentionally cheap — the study measures the arbiter, not the agents.
type loadBidder struct {
	id     workload.AppID
	demand int
	weight float64
	// offset staggers the machines this app bids on. All-or-nothing bundles
	// that all start at machine 0 conflict pathologically — the solver could
	// satisfy only the few that fit on the first machine; real agents spread
	// via placement, the load fixture spreads by index.
	offset int
}

func (b *loadBidder) ID() workload.AppID { return b.id }

func (b *loadBidder) rho(held int) float64 { return b.weight / float64(1+held) }

func (b *loadBidder) ReportRho(now float64, current cluster.Alloc) float64 {
	return b.rho(current.Total())
}

func (b *loadBidder) PrepareBid(now float64, offer, current cluster.Alloc) core.BidTable {
	held := current.Total()
	table := core.BidTable{App: b.id, Entries: []core.BidEntry{
		{Alloc: cluster.NewAlloc(), Rho: b.rho(held)},
	}}
	want := b.demand - held
	if want <= 0 {
		return table
	}
	machines := offer.Machines()
	if len(machines) == 0 {
		return table
	}
	prev := 0
	for _, size := range []int{(want + 1) / 2, want} {
		if size <= prev {
			continue
		}
		take := cluster.NewAlloc()
		for k := 0; k < len(machines) && take.Total() < size; k++ {
			m := machines[(b.offset+k)%len(machines)]
			for take[m] < offer[m] && take.Total() < size {
				take[m]++
			}
		}
		if take.Total() > prev {
			table.Entries = append(table.Entries, core.BidEntry{Alloc: take, Rho: b.rho(held + take.Total())})
			prev = take.Total()
		}
	}
	return table
}

func (b *loadBidder) UnmetParallelism(current cluster.Alloc) int {
	if unmet := b.demand - current.Total(); unmet > 0 {
		return unmet
	}
	return 0
}

func (b *loadBidder) GangSize() int { return 1 }

// loadBidders builds the study population: the last `demanding` apps split
// `capacity` GPUs of demand between them (weights rising with index, so they
// are unambiguously the most starved and therefore the auction participants);
// everyone else is idle — probed every round, never granted.
func loadBidders(n, demanding, capacity int) []core.Bidder {
	if demanding > n {
		demanding = n
	}
	base, rem := capacity/demanding, capacity%demanding
	out := make([]core.Bidder, n)
	for i := 0; i < n; i++ {
		b := &loadBidder{
			id:     workload.AppID(fmt.Sprintf("load-%06d", i)),
			weight: 1,
			offset: i,
		}
		if rank := i - (n - demanding); rank >= 0 {
			b.weight = 1000 + float64(i)
			b.demand = base
			if rank < rem {
				b.demand++
			}
		}
		out[i] = b
	}
	return out
}

// ShardedLoadStudy drives the same agent population through one unsharded
// ArbiterServer and one ShardedArbiterServer over identical clusters and
// compares throughput and allocation parity. An auction round's cost grows
// superlinearly with its size: hidden payments re-solve the market once per
// participant, and each solve scans every participant's bundles over the
// whole offer. N shards each auction 1/N of the participants over 1/N of
// the machines, so the per-round auction work falls by well over N× even on
// a single core — no parallelism required; the study quantifies that, plus
// the O(Agents) probe cost both deployments share.
//
// The population is fully subscribed (demanding apps' demands sum exactly
// to cluster capacity), so both deployments must converge to the identical
// allocation — every demand met, no GPU idle — and parity is exact, not
// approximate: per-shard auctions satisfy homed demand and the
// reconciliation round erases whatever imbalance the app→shard hash left.
//
// Every round advances the clock past the lease so the full cluster is
// reclaimed and re-auctioned — the worst-case round, not the incremental
// one.
func ShardedLoadStudy(opts ShardedLoadOptions) (ShardedLoadResult, error) {
	opts = opts.withDefaults()
	res := ShardedLoadResult{Agents: opts.Agents, Shards: opts.Shards, Rounds: opts.Rounds}

	buildTopo := func() (*cluster.Topology, error) {
		return cluster.Config{
			MachineSpecs: []cluster.MachineSpec{{
				Count: opts.Machines, GPUs: opts.GPUsPerMachine, SlotSize: opts.GPUsPerMachine / 2,
			}},
			MachinesPerRack: opts.MachinesPerRack,
		}.Build()
	}
	cfg := core.Config{FairnessKnob: opts.FairnessKnob, LeaseDuration: opts.LeaseDuration}

	// Unsharded reference.
	topoS, err := buildTopo()
	if err != nil {
		return res, err
	}
	arb, err := core.NewArbiter(topoS, cfg)
	if err != nil {
		return res, err
	}
	capacity := opts.Machines * opts.GPUsPerMachine
	single := rpc.NewArbiterServer(arb)
	for _, b := range loadBidders(opts.Agents, opts.DemandingApps, capacity) {
		single.RegisterBidder(b)
	}

	topoM, err := buildTopo()
	if err != nil {
		return res, err
	}
	sharded, err := rpc.NewShardedArbiterServer(topoM, cfg, opts.Shards)
	if err != nil {
		return res, err
	}
	for _, b := range loadBidders(opts.Agents, opts.DemandingApps, capacity) {
		sharded.RegisterBidder(b)
	}

	run := func(auction func(float64) (rpc.AuctionResponse, error)) (total, maxRound float64, err error) {
		for r := 0; r < opts.Rounds; r++ {
			now := float64(r) * (opts.LeaseDuration + 1)
			start := time.Now()
			if _, err := auction(now); err != nil {
				return 0, 0, err
			}
			d := time.Since(start).Seconds()
			total += d
			if d > maxRound {
				maxRound = d
			}
		}
		return total, maxRound, nil
	}

	if res.SingleSeconds, res.MaxRoundSecondsSingle, err = run(single.RunAuction); err != nil {
		return res, fmt.Errorf("experiments: unsharded load run: %w", err)
	}
	if res.ShardedSeconds, res.MaxRoundSecondsSharded, err = run(sharded.RunAuction); err != nil {
		return res, fmt.Errorf("experiments: sharded load run: %w", err)
	}

	agentRounds := float64(opts.Agents * opts.Rounds)
	if res.SingleSeconds > 0 {
		res.SingleThroughput = agentRounds / res.SingleSeconds
	}
	if res.ShardedSeconds > 0 {
		res.ShardedThroughput = agentRounds / res.ShardedSeconds
		res.Speedup = res.SingleSeconds / res.ShardedSeconds
	}

	// Phase breakdowns come from the arbiters' cumulative round telemetry;
	// the sharded deployment sums its shards and adds the reconciliation
	// pass the single arbiter does not have.
	st := single.Arbiter().Stats
	res.SinglePhases = PhaseSeconds{
		Probe: st.ProbeTime.Seconds(), Bid: st.BidTime.Seconds(),
		Solve: st.SolveTime.Seconds(), Leftover: st.LeftoverTime.Seconds(),
	}
	for i := 0; i < sharded.NumShards(); i++ {
		st := sharded.Shard(i).Arbiter().Stats
		res.ShardedPhases.Probe += st.ProbeTime.Seconds()
		res.ShardedPhases.Bid += st.BidTime.Seconds()
		res.ShardedPhases.Solve += st.SolveTime.Seconds()
		res.ShardedPhases.Leftover += st.LeftoverTime.Seconds()
	}
	_, _, recTime := sharded.ReconcileStats()
	res.ShardedPhases.Reconcile = recTime.Seconds()

	for i := 0; i < opts.Agents; i++ {
		id := workload.AppID(fmt.Sprintf("load-%06d", i))
		a := single.HeldTotalBy(id)
		b := sharded.HeldTotalGlobal(id)
		res.SingleGranted += a
		res.ShardedGranted += b
		if d := a - b; d >= 0 {
			res.ParityL1 += d
		} else {
			res.ParityL1 -= d
		}
	}
	if res.SingleGranted > 0 {
		res.ParityFrac = float64(res.ParityL1) / float64(res.SingleGranted)
	}
	if err := sharded.ValidateState(); err != nil {
		return res, fmt.Errorf("experiments: sharded state after load: %w", err)
	}
	return res, nil
}
