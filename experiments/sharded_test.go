package experiments

import (
	"testing"

	"themis/internal/race"
)

// TestShardedLoadStudySeed is the tier-1 seed of the load study: small enough
// to run in CI, large enough that the sharded deployment's advantage (auction
// cost superlinear in participants) is already measurable. The full-scale
// acceptance run lives in TestShardedLoadStudyFullScale.
func TestShardedLoadStudySeed(t *testing.T) {
	res, err := ShardedLoadStudy(ShardedLoadOptions{
		Agents:          2000,
		Shards:          4,
		Machines:        16,
		MachinesPerRack: 4,
		DemandingApps:   50,
		Rounds:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seed: %s", res.Summary())

	total := 16 * 8
	if res.SingleGranted != total {
		t.Errorf("single granted %d, want full capacity %d (full subscription)", res.SingleGranted, total)
	}
	if res.ShardedGranted != res.SingleGranted {
		t.Errorf("work conservation: sharded granted %d, single %d", res.ShardedGranted, res.SingleGranted)
	}
	if res.ParityL1 != 0 {
		t.Errorf("per-app divergence %d GPUs at full subscription, want exact parity", res.ParityL1)
	}
	if res.Speedup < 1 {
		t.Errorf("sharded deployment slower than single (%.2fx)", res.Speedup)
	}
}

// TestShardedLoadStudyFullScale is the acceptance run: 100k simulated agents
// through 8 shards must clear 5x the unsharded round throughput while ending
// in the identical allocation. Skipped under -short and -race (a 100k-agent
// auction under the race detector takes minutes and the seed test covers the
// same paths); the plain tier-1 lane runs it.
func TestShardedLoadStudyFullScale(t *testing.T) {
	if testing.Short() || race.Enabled {
		t.Skip("full-scale load study skipped under -short / -race")
	}
	res, err := ShardedLoadStudy(ShardedLoadOptions{}) // defaults: 100k agents, 8 shards
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full: %s (throughput %.0f vs %.0f agent-rounds/s, worst round %.2fs vs %.2fs)",
		res.Summary(),
		res.SingleThroughput, res.ShardedThroughput,
		res.MaxRoundSecondsSingle, res.MaxRoundSecondsSharded)

	if res.SingleGranted != 160*8 {
		t.Errorf("single granted %d, want full capacity %d (full subscription)", res.SingleGranted, 160*8)
	}
	if res.ShardedGranted != res.SingleGranted {
		t.Errorf("work conservation: sharded granted %d, single %d", res.ShardedGranted, res.SingleGranted)
	}
	if res.ParityL1 != 0 {
		t.Errorf("per-app divergence %d GPUs at full subscription, want exact parity", res.ParityL1)
	}
	if res.Speedup < 5 {
		t.Errorf("sharded throughput %.1fx the single arbiter, want >= 5x", res.Speedup)
	}
}
