package experiments

import (
	"context"
	"fmt"
	"strings"

	"themis"
	"themis/internal/fit"
)

// CalibratedRow is one policy's cell of a CalibratedStudy: the policy's
// replay of the real trace, its runs over the fitted twin's seeds, and the
// divergence between the two outcome distributions.
type CalibratedRow struct {
	Policy string
	// Real is the policy's replay of the input trace.
	Real *themis.Report
	// Fitted holds one report per seed of the fitted twin scenario.
	Fitted []*themis.Report
	// Divergence compares the real run's outcome distributions against the
	// fitted runs' pooled distributions.
	Divergence Divergence
}

// Divergence summarises how far a fitted twin's outcome distributions sit
// from the real trace's, per policy. Distances are two-sample
// Kolmogorov–Smirnov statistics in [0, 1] over finished apps (0 when either
// side finished none).
type Divergence struct {
	// FairnessKS is the KS distance between the finish-time-fairness (ρ)
	// distributions.
	FairnessKS float64
	// JCTKS is the KS distance between the app completion-time
	// distributions.
	JCTKS float64
	// MeanJCTRatio is fitted mean JCT / real mean JCT (0 when undefined).
	MeanJCTRatio float64
	// MaxFairnessRatio is fitted max ρ / real max ρ (0 when undefined).
	MaxFairnessRatio float64
	// RealFinished and FittedFinished count the finished apps behind the
	// distributions (fitted pooled across seeds).
	RealFinished, FittedFinished int
}

// CalibratedStudyResult is the outcome of a CalibratedStudy: the calibration
// itself plus one row per policy.
type CalibratedStudyResult struct {
	// Fit is the calibration the twin scenario was generated from.
	Fit *themis.FitReport
	// Seeds are the fitted twin's generation seeds, as run.
	Seeds []int64
	// Rows holds one entry per policy, in input policy order.
	Rows []CalibratedRow
}

// CalibratedStudy closes the calibration loop: it fits a scenario to the
// input trace, then runs every named policy both on the real trace and on
// len(seeds) fresh realizations of the fitted twin, all through the parallel
// sweep engine, and reports the divergence of the fairness and JCT
// distributions — the paper-methodology check that a calibrated synthetic
// family actually stands in for the trace it was learned from. An empty
// policy list defaults to every registered policy; empty seeds default to
// 1, 2, 3. Rows come back in policy order regardless of worker count.
func CalibratedStudy(ctx context.Context, workers int, tr themis.Trace, policies []string, seeds []int64, base ...themis.Option) (*CalibratedStudyResult, error) {
	if len(policies) == 0 {
		policies = themis.Policies()
	}
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	rep, err := themis.FitTrace(tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: calibrated study: %w", err)
	}

	// One spec per policy replaying the real trace, then one per
	// policy × seed over a freshly generated twin (runs mutate app state, so
	// every cell gets its own workload).
	specs := make([]themis.SweepSpec, 0, len(policies)*(1+len(seeds)))
	for _, policy := range policies {
		opts := append(append([]themis.Option{}, base...), themis.WithPolicy(policy), themis.WithTrace(tr))
		specs = append(specs, themis.SweepSpec{Name: policy + "/real", Options: opts})
	}
	for _, policy := range policies {
		for _, seed := range seeds {
			cfg := rep.Config
			cfg.Seed = seed
			twin, err := themis.ComposeWorkload(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: calibrated study: generating twin (seed %d): %w", seed, err)
			}
			opts := append(append([]themis.Option{}, base...), themis.WithPolicy(policy), themis.WithApps(twin...))
			specs = append(specs, themis.SweepSpec{Name: fmt.Sprintf("%s/fitted/seed-%d", policy, seed), Options: opts})
		}
	}
	results, err := themis.RunSweep(ctx, workers, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: calibrated study: %w", err)
	}

	out := &CalibratedStudyResult{Fit: rep, Seeds: append([]int64(nil), seeds...)}
	for i, policy := range policies {
		row := CalibratedRow{Policy: policy, Real: results[i].Report}
		for j := range seeds {
			row.Fitted = append(row.Fitted, results[len(policies)+i*len(seeds)+j].Report)
		}
		row.Divergence = diverge(row.Real, row.Fitted)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// diverge compares one real report's finished-app distributions against the
// pooled fitted reports'.
func diverge(real *themis.Report, fitted []*themis.Report) Divergence {
	realRho, realJCT := finishedValues(real)
	var fitRho, fitJCT []float64
	for _, f := range fitted {
		rho, jct := finishedValues(f)
		fitRho = append(fitRho, rho...)
		fitJCT = append(fitJCT, jct...)
	}
	d := Divergence{
		FairnessKS:     fit.KSTwoSample(realRho, fitRho),
		JCTKS:          fit.KSTwoSample(realJCT, fitJCT),
		RealFinished:   len(realRho),
		FittedFinished: len(fitRho),
	}
	if m := mean(realJCT); m > 0 {
		d.MeanJCTRatio = mean(fitJCT) / m
	}
	if m := maxOf(realRho); m > 0 {
		d.MaxFairnessRatio = maxOf(fitRho) / m
	}
	return d
}

// finishedValues extracts the finished apps' fairness and completion-time
// samples from a report.
func finishedValues(rep *themis.Report) (rho, jct []float64) {
	for _, rec := range rep.Finished() {
		rho = append(rho, rec.FinishTimeFairness)
		jct = append(jct, rec.CompletionTime)
	}
	return rho, jct
}

// RenderDivergence formats the per-policy divergence summary, the textual
// form the golden fit reports pin.
func (r *CalibratedStudyResult) RenderDivergence() string {
	var b strings.Builder
	fmt.Fprintf(&b, "divergence (real vs fitted twin, %d seed", len(r.Seeds))
	if len(r.Seeds) != 1 {
		fmt.Fprintf(&b, "s")
	}
	fmt.Fprintf(&b, ")\n")
	for _, row := range r.Rows {
		d := row.Divergence
		fmt.Fprintf(&b, "policy %-14s fairness KS %.6g, JCT KS %.6g, mean JCT ratio %.6g, max rho ratio %.6g (finished real %d, fitted %d)\n",
			row.Policy, d.FairnessKS, d.JCTKS, d.MeanJCTRatio, d.MaxFairnessRatio, d.RealFinished, d.FittedFinished)
	}
	return b.String()
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func maxOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
