package experiments_test

import (
	"context"
	"testing"

	"themis"
	"themis/experiments"
)

func TestScenarioStudy(t *testing.T) {
	rows, err := experiments.ScenarioStudy(context.Background(), 2,
		[]string{"themis"},
		[]string{"diurnal", "heavy-tailed"},
		[]int64{3, 4},
		themis.ScenarioParams{NumApps: 4, DurationScale: 0.1},
		themis.WithCluster(themis.ClusterTestbed),
		themis.WithHorizon(8000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	want := []struct {
		scenario string
		seed     int64
	}{{"diurnal", 3}, {"diurnal", 4}, {"heavy-tailed", 3}, {"heavy-tailed", 4}}
	for i, row := range rows {
		if row.Policy != "themis" || row.Scenario != want[i].scenario || row.Seed != want[i].seed {
			t.Errorf("row %d = %s/%s/seed=%d, want themis/%s/seed=%d",
				i, row.Policy, row.Scenario, row.Seed, want[i].scenario, want[i].seed)
		}
		if row.Report == nil || row.Report.Summary.AppsTotal != 4 {
			t.Errorf("row %d has no usable report", i)
		}
	}
	if _, err := experiments.ScenarioStudy(context.Background(), 1, nil, []string{"nope"}, nil, themis.ScenarioParams{}); err == nil {
		t.Error("unknown scenario should fail")
	}
}
