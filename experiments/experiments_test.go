package experiments_test

import (
	"context"
	"testing"

	"themis"
	"themis/experiments"
)

func TestScenarioStudy(t *testing.T) {
	rows, err := experiments.ScenarioStudy(context.Background(), 2,
		[]string{"themis"},
		[]string{"diurnal", "heavy-tailed"},
		[]int64{3, 4},
		themis.ScenarioParams{NumApps: 4, DurationScale: 0.1},
		themis.WithCluster(themis.ClusterTestbed),
		themis.WithHorizon(8000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	want := []struct {
		scenario string
		seed     int64
	}{{"diurnal", 3}, {"diurnal", 4}, {"heavy-tailed", 3}, {"heavy-tailed", 4}}
	for i, row := range rows {
		if row.Policy != "themis" || row.Scenario != want[i].scenario || row.Seed != want[i].seed {
			t.Errorf("row %d = %s/%s/seed=%d, want themis/%s/seed=%d",
				i, row.Policy, row.Scenario, row.Seed, want[i].scenario, want[i].seed)
		}
		if row.Report == nil || row.Report.Summary.AppsTotal != 4 {
			t.Errorf("row %d has no usable report", i)
		}
	}
	if _, err := experiments.ScenarioStudy(context.Background(), 1, nil, []string{"nope"}, nil, themis.ScenarioParams{}); err == nil {
		t.Error("unknown scenario should fail")
	}
}

func TestTraceStudy(t *testing.T) {
	tr := themis.Trace{Version: themis.TraceFormatVersion, Name: "study"}
	for i := 0; i < 4; i++ {
		tr.Apps = append(tr.Apps, themis.AppSpec{
			ID:         string(rune('a' + i)),
			SubmitTime: float64(i * 10),
			Model:      "VGG16",
			Placement:  &themis.PlacementSpec{MaxMachines: 1},
			Jobs:       []themis.JobSpec{{TotalWork: 40, GangSize: 2, Quality: 0.5, Seed: int64(i)}},
		})
	}
	rows, err := experiments.TraceStudy(context.Background(), 2, tr,
		[]string{"themis", "tiresias"},
		themis.WithCluster(themis.ClusterTestbed),
		themis.WithHorizon(4000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Policy != "themis" || rows[1].Policy != "tiresias" {
		t.Fatalf("rows: %+v", rows)
	}
	for _, row := range rows {
		if row.Report == nil || row.Report.Summary.AppsTotal != 4 {
			t.Errorf("policy %s has no usable report: %+v", row.Policy, row.Report)
		}
	}
	if _, err := experiments.TraceStudy(context.Background(), 1, tr, []string{"nope"}); err == nil {
		t.Error("unknown policy should fail")
	}
}
