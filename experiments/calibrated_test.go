package experiments

import (
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"themis"
)

// updateGolden regenerates the golden fit reports:
//
//	go test ./experiments/ -run TestGoldenFitReports -update-golden
//
// Only run it on a build whose calibration output is known-good; the
// checked-in files pin both the fitted-parameter estimates for the canonical
// v1 test traces and the real-vs-fitted divergence summary of
// CalibratedStudy over them.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden fit reports")

// goldenTracePath resolves the shared v1 trace corpus.
func goldenTracePath(name string) string {
	return filepath.Join("..", "internal", "trace", "testdata", "v1", name+".json")
}

// Every canonical v1 trace must calibrate to a bit-identical fit report, and
// CalibratedStudy's real-vs-fitted divergence summary must replay
// bit-identically too. Numbers render at six significant digits; fitting and
// the simulator are deterministic, so the comparison is byte-exact.
func TestGoldenFitReports(t *testing.T) {
	for _, name := range []string{"philly-small", "multi-job"} {
		t.Run(name, func(t *testing.T) {
			tr, err := themis.LoadTrace(goldenTracePath(name))
			if err != nil {
				t.Fatal(err)
			}
			// Policies: themis plus two baselines. Tiresias once looped
			// forever on philly-small's min-GPUs-per-machine job; the
			// simulator's constrained-grant repair fixed that (see the
			// regression test in internal/schedulers), so it replays here
			// again. The horizon is a backstop so golden regeneration can
			// never hang.
			res, err := CalibratedStudy(context.Background(), 2, tr,
				[]string{"themis", "gandiva", "tiresias"}, []int64{1, 2, 3},
				themis.WithCluster("testbed"), themis.WithHorizon(50000))
			if err != nil {
				t.Fatal(err)
			}
			got := res.Fit.Render() + "\n" + res.RenderDivergence()

			goldenPath := filepath.Join("testdata", "golden", name+".fit.golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("fit report diverged from golden\n--- got ---\n%s--- want ---\n%s", got, string(want))
			}
		})
	}
}

// CalibratedStudy's structure: rows per policy in order, one fitted report
// per seed, divergence populated, and the twin workloads actually distinct
// across seeds.
func TestCalibratedStudyShape(t *testing.T) {
	tr, err := themis.LoadTrace(goldenTracePath("philly-small"))
	if err != nil {
		t.Fatal(err)
	}
	policies := []string{"themis", "gandiva"}
	seeds := []int64{4, 5}
	res, err := CalibratedStudy(context.Background(), 4, tr, policies, seeds,
		themis.WithCluster("testbed"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit == nil {
		t.Fatal("no fit report")
	}
	if res.Fit.Provenance.Source != "philly-small" {
		t.Errorf("provenance source = %q, want philly-small", res.Fit.Provenance.Source)
	}
	if len(res.Rows) != len(policies) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(policies))
	}
	for i, row := range res.Rows {
		if row.Policy != policies[i] {
			t.Errorf("row %d policy = %s, want %s", i, row.Policy, policies[i])
		}
		if row.Real == nil {
			t.Fatalf("row %d has no real report", i)
		}
		if len(row.Fitted) != len(seeds) {
			t.Fatalf("row %d has %d fitted reports, want %d", i, len(row.Fitted), len(seeds))
		}
		if row.Real.Summary.AppsTotal != len(tr.Apps) {
			t.Errorf("real run simulated %d apps, want %d", row.Real.Summary.AppsTotal, len(tr.Apps))
		}
		for j, f := range row.Fitted {
			if f.Summary.AppsTotal != len(tr.Apps) {
				t.Errorf("fitted run %d simulated %d apps, want the trace's %d", j, f.Summary.AppsTotal, len(tr.Apps))
			}
		}
		// Different seeds must produce different twin realizations.
		if len(row.Fitted) == 2 && row.Fitted[0].Summary.GPUTime == row.Fitted[1].Summary.GPUTime {
			t.Errorf("row %d: fitted twins identical across seeds", i)
		}
		d := row.Divergence
		for _, ks := range []float64{d.FairnessKS, d.JCTKS} {
			if ks < 0 || ks > 1 || math.IsNaN(ks) {
				t.Errorf("row %d KS out of range: %+v", i, d)
			}
		}
		if d.RealFinished == 0 || d.FittedFinished == 0 {
			t.Errorf("row %d: no finished apps behind divergence: %+v", i, d)
		}
	}
	if !strings.Contains(res.RenderDivergence(), "policy themis") {
		t.Errorf("RenderDivergence missing policy line:\n%s", res.RenderDivergence())
	}
}

// Context cancellation propagates out of the underlying sweep.
func TestCalibratedStudyCancel(t *testing.T) {
	tr, err := themis.LoadTrace(goldenTracePath("philly-small"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CalibratedStudy(ctx, 2, tr, []string{"themis"}, []int64{1}); err == nil {
		t.Fatal("cancelled study succeeded")
	}
}
