package themis

import (
	"fmt"
	"sort"
	"sync"

	"themis/internal/core"
	"themis/internal/schedulers"
)

// PolicyConfig carries the knobs a policy factory may consume; the baseline
// policies ignore the fields that do not apply to them. Fields are used
// verbatim wherever their zero value is meaningful — FairnessKnob 0 really
// means f = 0 (offer GPUs to every app), as in the paper's Figure 4a sweep —
// so start from DefaultPolicyConfig to get the paper's settings. A zero
// LeaseDuration (which would be invalid) defaults to 20 minutes.
type PolicyConfig struct {
	// FairnessKnob is Themis's f ∈ [0,1]: free GPUs are offered to the worst
	// 1−f fraction of apps by finish-time fairness.
	FairnessKnob float64
	// LeaseDuration is the GPU lease length in minutes.
	LeaseDuration float64
	// BidErrorTheta perturbs Themis agents' ρ estimates by ±θ (Figure 11).
	BidErrorTheta float64
	// ErrorSeed seeds the per-agent bid error models.
	ErrorSeed int64
	// PlacementBlind makes Themis agents bid placement-obliviously (used by
	// the ablation benchmarks).
	PlacementBlind bool
}

// DefaultPolicyConfig returns the configuration the paper converges on
// (§8.2): f = 0.8 and a 20-minute lease.
func DefaultPolicyConfig() PolicyConfig {
	def := core.DefaultConfig()
	return PolicyConfig{FairnessKnob: def.FairnessKnob, LeaseDuration: def.LeaseDuration}
}

// withDefaults fills knobs whose zero value would be invalid. FairnessKnob
// is deliberately left verbatim: f = 0 is a valid extreme.
func (c PolicyConfig) withDefaults() PolicyConfig {
	if c.LeaseDuration == 0 {
		c.LeaseDuration = core.DefaultConfig().LeaseDuration
	}
	return c
}

// PolicyFactory builds a fresh policy instance. Policies hold per-run agent
// state, so the registry constructs a new one for every simulation.
type PolicyFactory func(cfg PolicyConfig) (SchedulerPolicy, error)

var (
	policyMu sync.RWMutex
	policies = map[string]PolicyFactory{}
)

// RegisterPolicy adds a named policy to the registry, making it available to
// Policy and WithPolicy. Registering a name twice is an error.
func RegisterPolicy(name string, factory PolicyFactory) error {
	if name == "" || factory == nil {
		return fmt.Errorf("themis: policy registration needs a name and a factory")
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policies[name]; dup {
		return fmt.Errorf("themis: policy %q already registered", name)
	}
	policies[name] = factory
	return nil
}

// Policies lists the registered policy names, sorted.
func Policies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policies))
	for name := range policies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Policy constructs a registered scheduling policy by name: "themis",
// "gandiva", "tiresias", "slaq", "resource-fair" or "strawman" (plus
// anything added via RegisterPolicy). The optional config carries the
// fairness knob, lease duration and bid-error model; omitted entirely, the
// paper's defaults (DefaultPolicyConfig) apply. A supplied config is used
// verbatim — FairnessKnob 0 means f = 0 — except that a zero LeaseDuration
// defaults to 20 minutes. Unknown names and invalid configurations return
// errors.
func Policy(name string, cfg ...PolicyConfig) (SchedulerPolicy, error) {
	c := DefaultPolicyConfig()
	if len(cfg) > 1 {
		return nil, fmt.Errorf("themis: Policy takes at most one config, got %d", len(cfg))
	}
	if len(cfg) == 1 {
		c = cfg[0]
	}
	policyMu.RLock()
	factory, ok := policies[name]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("themis: unknown policy %q (registered: %v)", name, Policies())
	}
	return factory(c.withDefaults())
}

// The paper's comparison set ships pre-registered.
func init() {
	mustRegister := func(name string, f PolicyFactory) {
		if err := RegisterPolicy(name, f); err != nil {
			panic(err)
		}
	}
	mustRegister("themis", func(cfg PolicyConfig) (SchedulerPolicy, error) {
		p, err := schedulers.NewThemis(core.Config{
			FairnessKnob:  cfg.FairnessKnob,
			LeaseDuration: cfg.LeaseDuration,
		})
		if err != nil {
			return nil, err
		}
		p.BidErrorTheta = cfg.BidErrorTheta
		p.ErrorSeed = cfg.ErrorSeed
		p.PlacementBlind = cfg.PlacementBlind
		return p, nil
	})
	mustRegister("gandiva", func(PolicyConfig) (SchedulerPolicy, error) {
		return schedulers.NewGandiva(), nil
	})
	mustRegister("tiresias", func(PolicyConfig) (SchedulerPolicy, error) {
		return schedulers.NewTiresias(), nil
	})
	mustRegister("slaq", func(cfg PolicyConfig) (SchedulerPolicy, error) {
		p := schedulers.NewSLAQ()
		p.WindowMinutes = cfg.LeaseDuration
		return p, nil
	})
	mustRegister("resource-fair", func(PolicyConfig) (SchedulerPolicy, error) {
		return schedulers.NewResourceFair(), nil
	})
	mustRegister("strawman", func(PolicyConfig) (SchedulerPolicy, error) {
		return schedulers.NewStrawman(), nil
	})
}
