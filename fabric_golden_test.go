package themis

// Golden determinism tests for the hierarchical topology path: a hand-built
// workload with fabric-domain affinities and per-machine floors replays on
// the multi-domain "sim-fabric" cluster, with and without the pack-to-empty
// engine, and the Reports — fragmentation stats included — are compared
// byte-for-byte against snapshots. Where golden_test.go pins the flat-cluster
// event core, these pin the domain-aware valuation (the "cross-domain"
// locality level), constraint-aware splitting, grant re-materialisation and
// the fragmentation accounting.
//
// Regenerate deliberately with:
//
//	go test -run TestGoldenFabricReports -update .

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// fabricGoldenApps hand-builds a fixed workload exercising the hierarchy:
// domain-pinned apps (including one pinned to the small mixed pod), a
// machine-floor gang, and unconstrained fillers that the packer is free to
// re-home.
func fabricGoldenApps(t testing.TB) []*App {
	t.Helper()
	model := func(name string) Profile {
		p, err := Model(name)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	type jobSpec struct {
		work   float64
		gang   int
		domain string
		minPer int
	}
	mkApp := func(id AppID, submit float64, profile string, jobs ...jobSpec) *App {
		trials := make([]*Job, len(jobs))
		for i, js := range jobs {
			j := NewJob(id, i, js.work, js.gang)
			j.DomainAffinity = js.domain
			j.MinGPUsPerMachine = js.minPer
			trials[i] = j
		}
		app, err := NewApp(id, submit, model(profile), trials)
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
	return []*App{
		mkApp("pinned-a", 0, "VGG16",
			jobSpec{work: 240, gang: 8, domain: "pod-a"},
			jobSpec{work: 160, gang: 4, domain: "pod-a"}),
		mkApp("pinned-c", 5, "ResNet50",
			jobSpec{work: 120, gang: 4, domain: "pod-c"},
			jobSpec{work: 120, gang: 2, domain: "pod-c"}),
		mkApp("floor", 10, "VGG16",
			jobSpec{work: 200, gang: 4, minPer: 2},
			jobSpec{work: 100, gang: 4, minPer: 2}),
		mkApp("free-1", 15, "Inceptionv3",
			jobSpec{work: 180, gang: 4},
			jobSpec{work: 90, gang: 2},
			jobSpec{work: 60, gang: 1}),
		mkApp("free-2", 20, "DeepSpeech",
			jobSpec{work: 150, gang: 8}),
		mkApp("free-3", 25, "ResNet50",
			jobSpec{work: 80, gang: 2},
			jobSpec{work: 80, gang: 2}),
	}
}

// fabricGoldenVariants names the pinned configurations: the Themis policy on
// the three-domain cluster, with the policy's own placement and with grants
// re-materialised by the pack-to-empty engine.
var fabricGoldenVariants = []struct {
	name   string
	packer string
}{
	{"fabric-themis", ""},
	{"fabric-themis-packed", PackerPackToEmpty},
}

func TestGoldenFabricReports(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden snapshots are byte-exact only on amd64 (running on %s)", runtime.GOARCH)
	}
	for _, v := range fabricGoldenVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			opts := []Option{
				WithCluster(ClusterSimFabric),
				WithApps(fabricGoldenApps(t)...),
				WithPolicy("themis"),
				WithSeed(7),
				WithHorizon(20000),
			}
			if v.packer != "" {
				opts = append(opts, WithPacker(v.packer))
			}
			sim, err := NewSimulation(opts...)
			if err != nil {
				t.Fatal(err)
			}
			report, err := sim.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got := serializeReport(report) + serializeFragmentation(report)
			path := filepath.Join("testdata", "golden", v.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden snapshot (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("fabric report %s diverged from golden snapshot %s\n%s",
					v.name, path, diffSnippet(string(want), got))
			}
		})
	}
}

// serializeFragmentation renders Report.Fragmentation in the goldens' stable
// float form. It is appended to serializeReport only by the fabric goldens:
// the flat-cluster snapshots predate fragmentation tracking and stay
// byte-identical.
func serializeFragmentation(r *Report) string {
	var b strings.Builder
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	f := r.Fragmentation
	fmt.Fprintf(&b, "frag free=%s score-mean=%s score-peak=%s\n",
		g(f.MeanFreeGPUs), g(f.MeanScore), g(f.PeakScore))
	fmt.Fprintf(&b, "frag blocks machine=%s rack=%s domain=%s\n",
		g(f.MeanLargestMachineBlock), g(f.MeanLargestRackBlock), g(f.MeanLargestDomainBlock))
	return b.String()
}

// TestFabricDomainPinningRespected asserts the replayed goldens' substance
// independent of snapshots: every app (domain-pinned ones included) finishes,
// and pack-to-empty achieves its objective — keeping the free pool
// consolidated into larger domain-level empty blocks than the policy's own
// placement leaves behind.
func TestFabricDomainPinningRespected(t *testing.T) {
	run := func(packer string) *Report {
		opts := []Option{
			WithCluster(ClusterSimFabric),
			WithApps(fabricGoldenApps(t)...),
			WithPolicy("themis"),
			WithSeed(7),
			WithHorizon(20000),
		}
		if packer != "" {
			opts = append(opts, WithPacker(packer))
		}
		sim, err := NewSimulation(opts...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run("")
	packed := run(PackerPackToEmpty)
	for _, rep := range []*Report{plain, packed} {
		if rep.Summary.AppsFinished != rep.Summary.AppsTotal {
			t.Fatalf("only %d/%d apps finished on sim-fabric", rep.Summary.AppsFinished, rep.Summary.AppsTotal)
		}
		if rep.Fragmentation.MeanLargestDomainBlock < rep.Fragmentation.MeanLargestRackBlock {
			t.Errorf("fragmentation blocks unordered: domain %v < rack %v",
				rep.Fragmentation.MeanLargestDomainBlock, rep.Fragmentation.MeanLargestRackBlock)
		}
	}
	if packed.Fragmentation.MeanLargestDomainBlock+1e-9 < plain.Fragmentation.MeanLargestDomainBlock {
		t.Errorf("pack-to-empty left the free pool more fragmented: largest domain block packed %v < plain %v",
			packed.Fragmentation.MeanLargestDomainBlock, plain.Fragmentation.MeanLargestDomainBlock)
	}
}
