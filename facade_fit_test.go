package themis

import (
	"context"
	"math"
	"strings"
	"testing"
)

// Acceptance: FitScenario on the output of GenerateScenario must recover the
// arrival-pattern kind and size-law kind of every built-in scenario family,
// with rate/shape parameters within the tolerances documented in
// internal/fit (MLE knobs within ~15%, day-shape and burst knobs within
// ~25–35%). The built-ins' default 50 apps are far below the detectors'
// documented minimum samples, so the families are generated at 2000 apps.
func TestFitRecoversBuiltinScenarioFamilies(t *testing.T) {
	cases := []struct {
		scenario string
		arrival  ArrivalPattern
		size     SizePattern
	}{
		{"paper-mix", ArrivalPoisson, SizeLognormal},
		{"diurnal", ArrivalDiurnal, SizeLognormal},
		{"heavy-tailed", ArrivalPoisson, SizePareto},
		{"bursty", ArrivalBursty, SizeLognormal},
		{"mixed-gangs", ArrivalPoisson, SizeLognormal},
	}
	for _, tc := range cases {
		t.Run(tc.scenario, func(t *testing.T) {
			apps, err := GenerateScenario(tc.scenario, ScenarioParams{Seed: 17, NumApps: 2000})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := FitScenario(apps)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Arrival.Pattern != tc.arrival {
				t.Errorf("arrival = %s, want %s (amplitude %v, IoD %v, burst fraction %v)",
					rep.Arrival.Pattern, tc.arrival, rep.Arrival.DiurnalAmplitude,
					rep.Arrival.IndexOfDispersion, rep.Arrival.BurstFraction)
			}
			if rep.Size.Law != tc.size {
				t.Errorf("size law = %s, want %s (lognormal AIC %v, pareto AIC %v)",
					rep.Size.Law, tc.size, rep.Size.Lognormal.AIC, rep.Size.Pareto.AIC)
			}

			// Every built-in shares the paper's 20-minute mean inter-arrival.
			if got := rep.Config.MeanInterArrival; math.Abs(got-20) > 20*0.25 {
				t.Errorf("MeanInterArrival = %v, want 20 ± 25%%", got)
			}
			switch tc.scenario {
			case "diurnal":
				if got := rep.Config.DiurnalPeakToTrough; math.Abs(got-4) > 4*0.25 {
					t.Errorf("DiurnalPeakToTrough = %v, want 4 ± 25%%", got)
				}
			case "heavy-tailed":
				if got := rep.Size.ParetoAlpha; math.Abs(got-1.5) > 1.5*0.15 {
					t.Errorf("ParetoAlpha = %v, want 1.5 ± 15%%", got)
				}
				if got := rep.Size.ParetoMin; math.Abs(got-15) > 15*0.10 {
					t.Errorf("ParetoMin = %v, want 15 ± 10%%", got)
				}
			case "bursty":
				if got := float64(rep.Config.BurstApps); math.Abs(got-8) > 8*0.35 {
					t.Errorf("BurstApps = %v, want 8 ± 35%%", got)
				}
				if got := rep.Config.BurstFraction; math.Abs(got-0.5) > 0.12 {
					t.Errorf("BurstFraction = %v, want 0.5 ± 0.12", got)
				}
			case "mixed-gangs":
				wantSizes := []int{1, 2, 4, 8}
				if len(rep.Gangs) != len(wantSizes) {
					t.Fatalf("fitted %d gang sizes, want %d: %+v", len(rep.Gangs), len(wantSizes), rep.Gangs)
				}
				for i, g := range rep.Gangs {
					if g.Size != wantSizes[i] {
						t.Errorf("gang[%d].Size = %d, want %d", i, g.Size, wantSizes[i])
					}
				}
			}
		})
	}
}

// A calibrated scenario registers like any built-in: WithScenario resolves
// it, Grid expands it, DescribeScenario renders its provenance and
// ScenarioFit returns the full report.
func TestRegisterCalibratedScenario(t *testing.T) {
	apps, err := GenerateScenario("heavy-tailed", ScenarioParams{Seed: 3, NumApps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := FitScenario(apps)
	if err != nil {
		t.Fatal(err)
	}
	rep.Provenance.Source = "facade-test-trace"
	rep.Provenance.FittedAt = "2026-07-30"

	const name = "calibrated-facade-test"
	if err := RegisterCalibratedScenario(name, rep); err != nil {
		t.Fatal(err)
	}
	if err := RegisterCalibratedScenario(name, rep); err == nil {
		t.Error("duplicate calibrated registration succeeded")
	}
	if err := RegisterCalibratedScenario("calibrated-nil", nil); err == nil {
		t.Error("nil-report registration succeeded")
	}

	desc, err := DescribeScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"calibrated from", "facade-test-trace", "fitted 2026-07-30", "pareto sizes", "KS"} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribeScenario = %q, missing %q", desc, want)
		}
	}
	if _, ok := ScenarioFit(name); !ok {
		t.Error("ScenarioFit does not return the calibrated report")
	}
	if _, ok := ScenarioFit("paper-mix"); ok {
		t.Error("ScenarioFit returned a report for a built-in")
	}

	// The calibrated entry drives a simulation through WithScenario...
	sim, err := NewSimulation(
		WithCluster(ClusterTestbed),
		WithScenario(name, ScenarioParams{NumApps: 8}),
		WithSeed(5),
		WithHorizon(4000),
	)
	if err != nil {
		t.Fatal(err)
	}
	repSim, err := sim.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(repSim.Apps) != 8 {
		t.Errorf("calibrated scenario run has %d apps, want 8", len(repSim.Apps))
	}

	// ...and expands through the Grid sweep axis like any built-in.
	specs, err := Grid{
		Policies:  []string{"themis"},
		Scenarios: []string{name},
		Seeds:     []int64{1, 2},
		Params:    ScenarioParams{NumApps: 6},
	}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("Grid expanded to %d specs, want 2", len(specs))
	}
	results, err := RunSweep(context.Background(), 2, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Report == nil {
			t.Fatalf("sweep cell %d has no report", i)
		}
	}
}
