module themis

go 1.24
