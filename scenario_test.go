package themis

import (
	"context"
	"strings"
	"testing"
)

func TestScenarioRegistry(t *testing.T) {
	names := Scenarios()
	for _, want := range []string{"paper-mix", "diurnal", "heavy-tailed", "bursty", "mixed-gangs"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in scenario %q not registered: %v", want, names)
		}
	}
	desc, err := DescribeScenario("diurnal")
	if err != nil || !strings.Contains(desc, "day-night") {
		t.Errorf("DescribeScenario(diurnal) = %q, %v", desc, err)
	}
	if _, err := DescribeScenario("nope"); err == nil {
		t.Error("unknown scenario should fail")
	}
	if err := RegisterScenario("", "x", nil); err == nil {
		t.Error("empty registration should fail")
	}
	if err := RegisterScenario("paper-mix", "dup", func(ScenarioParams) ([]*App, error) { return nil, nil }); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestGenerateScenarioParams(t *testing.T) {
	apps, err := GenerateScenario("heavy-tailed", ScenarioParams{Seed: 5, NumApps: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 7 {
		t.Fatalf("NumApps override ignored: %d apps", len(apps))
	}
	again, err := GenerateScenario("heavy-tailed", ScenarioParams{Seed: 5, NumApps: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range apps {
		if apps[i].SubmitTime != again[i].SubmitTime {
			t.Fatalf("scenario replay diverged at app %d", i)
		}
	}
	if _, err := GenerateScenario("nope"); err == nil {
		t.Error("unknown scenario should fail")
	}
	if _, err := GenerateScenario("paper-mix", ScenarioParams{}, ScenarioParams{}); err == nil {
		t.Error("two params should fail")
	}
}

func TestWithScenarioOption(t *testing.T) {
	sim, err := NewSimulation(
		WithScenario("bursty", ScenarioParams{NumApps: 6, DurationScale: 0.1}),
		WithSeed(3),
		WithHorizon(5000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Apps()) != 6 {
		t.Fatalf("scenario workload has %d apps, want 6", len(sim.Apps()))
	}
	if _, err := sim.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulation(WithScenario("nope")); err == nil {
		t.Error("unknown scenario should fail at option time")
	}
	// The last workload option wins, like the other sources.
	sim2, err := NewSimulation(WithScenario("diurnal"), WithWorkload(WorkloadSpec{NumApps: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if len(sim2.Apps()) != 3 {
		t.Errorf("later WithWorkload should override WithScenario: %d apps", len(sim2.Apps()))
	}
}

func TestGridSpecs(t *testing.T) {
	specs, err := Grid{
		Policies:  []string{"themis", "tiresias"},
		Scenarios: []string{"paper-mix", "diurnal"},
		Seeds:     []int64{1, 2},
		Params:    ScenarioParams{NumApps: 4, DurationScale: 0.1},
		Base:      []Option{WithHorizon(2000)},
	}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("grid expanded to %d specs, want 8", len(specs))
	}
	if specs[0].Name != "themis/paper-mix/seed=1" || specs[7].Name != "tiresias/diurnal/seed=2" {
		t.Errorf("spec names: %q ... %q", specs[0].Name, specs[7].Name)
	}
	if _, err := (Grid{Scenarios: []string{"nope"}}).Specs(); err == nil {
		t.Error("unknown scenario axis entry should fail")
	}
	// Empty axes collapse to defaults.
	specs, err = Grid{Base: []Option{WithWorkload(WorkloadSpec{NumApps: 2})}}.Specs()
	if err != nil || len(specs) != 1 || specs[0].Name != "themis/seed=1" {
		t.Errorf("default grid: %d specs, err=%v", len(specs), err)
	}
}

func TestGridRunsThroughSweep(t *testing.T) {
	specs, err := Grid{
		Policies:  []string{"themis"},
		Scenarios: []string{"diurnal", "heavy-tailed"},
		Seeds:     []int64{9},
		Params:    ScenarioParams{NumApps: 5, DurationScale: 0.1},
		Base:      []Option{WithHorizon(8000)},
	}.Specs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunSweep(context.Background(), 2, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Report == nil || res.Report.Summary.AppsTotal != 5 {
			t.Errorf("result %d (%s): %+v", i, res.Name, res.Report)
		}
	}
}
