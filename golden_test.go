package themis

// Golden determinism tests: every built-in policy replays a fixed seeded
// trace and the resulting Report is compared byte-for-byte against a snapshot
// under testdata/golden. These snapshots were generated with the pre-heap
// scan-based event core and pin the simulator's observable behaviour — they
// are the before/after guard for event-core refactors: any change to event
// ordering, progress integration or metric accounting shows up as a diff.
//
// Regenerate deliberately with:
//
//	go test -run TestGoldenReports -update .
//
// Numbers are serialised with strconv.FormatFloat(v, 'g', -1, 64) (shortest
// round-trip form), so even last-ulp drift is caught. Wall-clock auction
// timings are excluded: they are the only nondeterministic Report fields.

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden report snapshots")

// goldenPolicies is the built-in comparison set pinned by golden snapshots.
var goldenPolicies = []string{"themis", "gandiva", "tiresias", "slaq", "resource-fair", "strawman"}

// goldenSimulation builds the fixed scenario every policy replays: the
// 50-GPU testbed topology under a seeded synthetic trace small enough that
// the full suite runs in a few seconds.
func goldenSimulation(t testing.TB, policy string) *Simulation {
	t.Helper()
	spec := DefaultWorkloadSpec()
	spec.Seed = 7
	spec.NumApps = 12
	spec.JobsPerAppMedian = 4
	spec.MaxJobsPerApp = 8
	spec.MeanInterArrival = 6
	spec.DurationScale = 0.2
	sim, err := NewSimulation(
		WithCluster(ClusterTestbed),
		WithWorkload(spec),
		WithPolicy(policy),
		WithSeed(7),
		WithHorizon(20000),
	)
	if err != nil {
		t.Fatalf("building %s golden simulation: %v", policy, err)
	}
	return sim
}

func TestGoldenReports(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// The snapshots were generated on amd64. Go may fuse x*y+z into a
		// single FMA on other architectures (arm64, ppc64), shifting results
		// by an ulp — enough to fail a byte-exact comparison of shortest
		// round-trip floats. CI enforces the snapshots on amd64;
		// TestGoldenReplayIsByteStable still covers within-process
		// determinism everywhere.
		t.Skipf("golden snapshots are byte-exact only on amd64 (running on %s)", runtime.GOARCH)
	}
	for _, policy := range goldenPolicies {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			report, err := goldenSimulation(t, policy).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got := serializeReport(report)
			path := filepath.Join("testdata", "golden", policy+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden snapshot (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("report for %s diverged from golden snapshot %s\n%s",
					policy, path, diffSnippet(string(want), got))
			}
		})
	}
}

// goldenScenarios are the scenario-library entries pinned by their own
// snapshots: the two workload families whose generators (diurnal thinning,
// Pareto sampling) are most at risk of silent drift.
var goldenScenarios = []string{"diurnal", "heavy-tailed"}

// goldenScenarioSpecs spans the pinned scenarios through the public sweep
// grid — the same path users take — under the Themis policy.
func goldenScenarioSpecs(t testing.TB) []SweepSpec {
	t.Helper()
	specs, err := Grid{
		Policies:  []string{"themis"},
		Scenarios: goldenScenarios,
		Seeds:     []int64{7},
		Params:    ScenarioParams{NumApps: 10, DurationScale: 0.2},
		Base:      []Option{WithCluster(ClusterTestbed), WithHorizon(20000)},
	}.Specs()
	if err != nil {
		t.Fatalf("building scenario golden grid: %v", err)
	}
	return specs
}

// TestGoldenScenarioSweep replays the pinned scenarios end-to-end through
// themis.RunSweep and compares each Report byte-for-byte against its
// snapshot, locking down the scenario generators, the Grid axis expansion
// and the sweep engine in one pass. Regenerate deliberately with -update.
func TestGoldenScenarioSweep(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden snapshots are byte-exact only on amd64 (running on %s)", runtime.GOARCH)
	}
	results, err := RunSweep(context.Background(), 2, goldenScenarioSpecs(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, scenario := range goldenScenarios {
		got := serializeReport(results[i].Report)
		path := filepath.Join("testdata", "golden", "scenario-"+scenario+".golden")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading golden snapshot (run with -update to create): %v", err)
		}
		if got != string(want) {
			t.Errorf("scenario %s (%s) diverged from golden snapshot %s\n%s",
				scenario, results[i].Name, path, diffSnippet(string(want), got))
		}
	}
}

// TestGoldenReplayIsByteStable runs one policy twice in the same process and
// asserts the serialized reports are identical — determinism independent of
// the stored snapshots.
func TestGoldenReplayIsByteStable(t *testing.T) {
	for _, policy := range []string{"themis", "tiresias"} {
		a, err := goldenSimulation(t, policy).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := goldenSimulation(t, policy).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if serializeReport(a) != serializeReport(b) {
			t.Errorf("two replays of %s produced different reports", policy)
		}
	}
}

// serializeReport renders the deterministic content of a Report in a stable
// text form: headline summary, per-app records, the fairness CDF, auction
// telemetry (minus wall-clock timings) and a digest of the full allocation
// timeline.
func serializeReport(r *Report) string {
	var b strings.Builder
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	s := r.Summary
	fmt.Fprintf(&b, "policy %s\n", s.Policy)
	fmt.Fprintf(&b, "summary finished=%d total=%d\n", s.AppsFinished, s.AppsTotal)
	fmt.Fprintf(&b, "summary fairness max=%s median=%s min=%s jains=%s\n",
		g(s.MaxFairness), g(s.MedianFairness), g(s.MinFairness), g(s.JainsIndex))
	fmt.Fprintf(&b, "summary jct mean=%s p95=%s\n", g(s.MeanCompletionTime), g(s.P95CompletionTime))
	fmt.Fprintf(&b, "summary cluster gputime=%s placement=%s contention=%s makespan=%s\n",
		g(s.GPUTime), g(s.MeanPlacementScore), g(s.PeakContention), g(s.Makespan))
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "app %s model=%s network=%t submit=%s finish=%s completion=%s tideal=%s rho=%s busy=%s held=%s placement=%s jobs=%d killed=%d\n",
			a.App, a.Model, a.Network, g(a.SubmitTime), g(a.FinishTime), g(a.CompletionTime),
			g(a.TIdeal), g(a.FinishTimeFairness), g(a.BusyGPUTime), g(a.HeldGPUTime),
			g(a.PlacementScore), a.JobsTotal, a.JobsKilled)
	}
	cdf := r.FairnessCDF(8)
	for i := range cdf.Values {
		fmt.Fprintf(&b, "fairness-cdf %s %s\n", g(cdf.Values[i]), g(cdf.Fractions[i]))
	}
	if r.Auction != nil {
		a := r.Auction
		fmt.Fprintf(&b, "auction auctions=%d offers=%d gpus=%d leftover=%d payments=%s empty-winners=%d\n",
			a.Auctions, a.OffersMade, a.GPUsAuctioned, a.GPUsLeftOver, g(a.TruthfulPayments), a.WinnersWithNothing)
	}
	h := fnv.New64a()
	for _, e := range r.Timeline {
		fmt.Fprintf(h, "%s/%s/%d\n", g(e.Time), e.App, e.GPUs)
	}
	fmt.Fprintf(&b, "timeline events=%d digest=%016x\n", len(r.Timeline), h.Sum64())
	return b.String()
}

// diffSnippet points at the first line where two serializations diverge.
func diffSnippet(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first divergence at line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}
