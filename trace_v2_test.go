package themis_test

// Facade-level coverage for trace format v2: placement blocks ride the wire,
// survive save/load, and — the point of carrying them at all — change how a
// replay schedules compared to the same trace with constraints stripped.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"themis"
)

// constrainedTrace builds a v2 trace of n gang-of-4 apps whose placement
// block pins each gang to a single machine (MaxMachines 1) — satisfiable on
// the testbed's 4-GPU machines but violated whenever the scheduler scatters
// a gang across the 2- and 1-GPU machines.
func constrainedTrace(n int) themis.Trace {
	tr := themis.Trace{Version: themis.TraceFormatVersion, Name: "v2-replay"}
	for i := 0; i < n; i++ {
		tr.Apps = append(tr.Apps, themis.AppSpec{
			ID:         fmt.Sprintf("app-%02d", i),
			SubmitTime: float64(i * 5),
			Model:      "VGG16",
			Placement:  &themis.PlacementSpec{MaxMachines: 1},
			Jobs: []themis.JobSpec{{
				TotalWork: 120 + float64(i%4)*30,
				GangSize:  4,
				Quality:   float64(i%7) / 7,
				Seed:      int64(i + 1),
			}},
		})
	}
	return tr
}

// stripPlacement returns a copy of tr with every placement block removed.
func stripPlacement(tr themis.Trace) themis.Trace {
	out := tr
	out.Apps = append([]themis.AppSpec(nil), tr.Apps...)
	for i := range out.Apps {
		out.Apps[i].Placement = nil
	}
	return out
}

func replay(t *testing.T, tr themis.Trace) *themis.Report {
	t.Helper()
	s, err := themis.NewSimulation(
		themis.WithCluster(themis.ClusterTestbed),
		themis.WithPolicy("themis"),
		themis.WithTrace(tr),
		themis.WithHorizon(20000),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The acceptance bar for the v2 format: a trace carrying placement
// constraints must replay differently from the identical trace with the
// constraints stripped. Both runs are deterministic, so if the constraints
// never influenced a placement decision the reports would be bit-identical.
func TestV2ConstraintsChangeReplay(t *testing.T) {
	tr := constrainedTrace(12)

	// The constraints must survive the wire: run the replay from a
	// re-decoded copy, not the in-memory original.
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := themis.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	constrained := replay(t, decoded)
	unconstrained := replay(t, stripPlacement(tr))

	if constrained.Summary.AppsFinished == 0 {
		t.Fatal("constrained replay finished no apps — constraints starved the workload")
	}
	same := constrained.Summary.Makespan == unconstrained.Summary.Makespan &&
		constrained.Summary.MeanCompletionTime == unconstrained.Summary.MeanCompletionTime &&
		constrained.Summary.GPUTime == unconstrained.Summary.GPUTime &&
		constrained.Summary.MeanPlacementScore == unconstrained.Summary.MeanPlacementScore
	if same {
		t.Fatalf("placement constraints had no effect on the replay: both runs report makespan %.2f, mean JCT %.2f, GPU time %.0f, placement %.3f",
			constrained.Summary.Makespan, constrained.Summary.MeanCompletionTime,
			constrained.Summary.GPUTime, constrained.Summary.MeanPlacementScore)
	}
}

// Placement blocks and per-job constraints must survive SaveTrace/LoadTrace,
// and a v1 file must load under v2 code (lossless upgrade-on-read).
func TestV2TraceFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := constrainedTrace(3)
	path := dir + "/v2.json"
	if err := themis.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := themis.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != themis.TraceFormatVersion {
		t.Errorf("loaded version %d, want %d", back.Version, themis.TraceFormatVersion)
	}
	if back.Apps[0].Placement == nil || back.Apps[0].Placement.MaxMachines != 1 {
		t.Errorf("placement block lost on disk round trip: %+v", back.Apps[0])
	}

	v1 := `{"version":1,"apps":[{"id":"a","model":"VGG16","jobs":[{"total_work":10,"gang_size":2}]}]}`
	old, err := themis.ReadTrace(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 trace no longer reads: %v", err)
	}
	if old.Version != themis.TraceFormatVersion {
		t.Errorf("v1 read produced version %d, want upgrade to %d", old.Version, themis.TraceFormatVersion)
	}
	supported := themis.SupportedTraceVersions()
	if len(supported) != 2 || supported[0] != 1 || supported[1] != 2 {
		t.Errorf("SupportedTraceVersions() = %v, want [1 2]", supported)
	}
}

// ImportTraceStream must deliver progress and honour the placement stamp end
// to end through the facade.
func TestImportTraceStreamFacade(t *testing.T) {
	csv := "jobid,submit_time,gpus,duration,status\n"
	for i := 0; i < 25; i++ {
		csv += fmt.Sprintf("j-%02d,%d,4,60,Pass\n", i, (i*13)%25)
	}
	var snaps []themis.ImportProgress
	tr, err := themis.ImportTraceStream(strings.NewReader(csv), themis.TraceFormatAuto,
		themis.ImportOptions{
			MaxApps:       10,
			ProgressEvery: 10,
			Placement:     &themis.PlacementSpec{Profile: "VGG16", MaxMachines: 1},
		},
		func(p themis.ImportProgress) { snaps = append(snaps, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Apps) != 10 {
		t.Fatalf("imported %d apps, want the 10 earliest", len(tr.Apps))
	}
	if len(snaps) == 0 || !snaps[len(snaps)-1].Done {
		t.Fatalf("progress snapshots: %+v", snaps)
	}
	apps, err := tr.ToApps()
	if err != nil {
		t.Fatal(err)
	}
	if apps[0].Profile.Name != "VGG16" || apps[0].Jobs[0].MaxMachines != 1 {
		t.Errorf("stamped placement did not materialise: profile %q, constraints %+v",
			apps[0].Profile.Name, apps[0].Jobs[0])
	}
	// Bad options surface as errors through the facade, not garbage traces.
	if _, err := themis.ImportTrace(strings.NewReader(csv), themis.TraceFormatAuto,
		themis.ImportOptions{TimeScale: -1}); err == nil {
		t.Error("negative TimeScale accepted")
	}
}
