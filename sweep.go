package themis

import (
	"context"
	"fmt"

	"themis/internal/experiments"
)

// SweepSpec names one simulation configuration within a sweep: the Options
// are exactly what NewSimulation would receive. Because simulations are
// single-use, each spec is constructed — workload generation included —
// inside its worker, so seeded specs produce identical Reports regardless
// of worker count or scheduling.
type SweepSpec struct {
	// Name labels the run in results and errors (e.g. "themis/f=0.8/seed=42").
	Name string
	// Options configure the run, as in NewSimulation.
	Options []Option
}

// SweepResult pairs one completed sweep run with its spec's name. Results
// are returned in spec order.
type SweepResult struct {
	Name   string
	Report *Report
}

// RunSweep builds and runs one simulation per spec, fanning the grid across
// a bounded worker pool. It is the engine behind the paper's §8 evaluation
// sweeps (many policies × seeds × workloads) and the recommended way to run
// parameter studies against the public API.
//
// workers bounds the pool; zero or negative uses GOMAXPROCS. Results align
// one-to-one with specs irrespective of completion order. The first
// configuration or simulation error cancels the remaining runs and is
// returned with its spec's name; cancelling ctx aborts the sweep, stopping
// in-flight simulations at their next decision point.
func RunSweep(ctx context.Context, workers int, specs []SweepSpec) ([]SweepResult, error) {
	results := make([]SweepResult, len(specs))
	err := experiments.RunGrid(ctx, workers, len(specs), func(ctx context.Context, i int) error {
		spec := specs[i]
		sim, err := NewSimulation(spec.Options...)
		if err != nil {
			return fmt.Errorf("themis: sweep %q: %w", specName(spec, i), err)
		}
		report, err := sim.Run(ctx)
		if err != nil {
			return fmt.Errorf("themis: sweep %q: %w", specName(spec, i), err)
		}
		results[i] = SweepResult{Name: spec.Name, Report: report}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// specName labels a spec in errors, falling back to its index.
func specName(spec SweepSpec, i int) string {
	if spec.Name != "" {
		return spec.Name
	}
	return fmt.Sprintf("spec %d", i)
}

// Grid declaratively spans a sweep over the registries: the cross product of
// a policy axis, a scenario axis and a seed axis, sharing a base option list.
// It is the idiomatic way to fan "every scheduler × every workload family"
// through RunSweep:
//
//	specs, err := themis.Grid{
//		Policies:  themis.Policies(),
//		Scenarios: []string{"paper-mix", "diurnal", "heavy-tailed"},
//		Seeds:     []int64{1, 2, 3},
//		Params:    themis.ScenarioParams{NumApps: 50},
//	}.Specs()
//	results, err := themis.RunSweep(ctx, 0, specs)
type Grid struct {
	// Policies is the policy axis; empty means just the default ("themis").
	Policies []string
	// Clusters is the topology axis, naming registered clusters (see
	// Clusters and RegisterCluster); empty means the cluster comes from Base
	// or the default.
	Clusters []string
	// Scenarios is the workload axis, naming registered scenarios; empty
	// means the workload comes from Base (e.g. a WithTrace option).
	Scenarios []string
	// Seeds is the seed axis; empty means just seed 1. Each seed feeds both
	// WithSeed and the scenario generation.
	Seeds []int64
	// Params is applied to every scenario cell (the cell's seed wins).
	Params ScenarioParams
	// Base options are prepended to every spec: cluster, horizon, knobs —
	// and the workload source when the Scenarios axis is empty.
	Base []Option
}

// Specs expands the grid into RunSweep specs, ordered policy-major, then
// cluster, then scenario, then seed. Spec names are
// "policy/cluster/scenario/seed=N" with empty axes omitted.
func (g Grid) Specs() ([]SweepSpec, error) {
	policies := g.Policies
	if len(policies) == 0 {
		policies = []string{"themis"}
	}
	clusters := g.Clusters
	if len(clusters) == 0 {
		clusters = []string{""}
	}
	scenarios := g.Scenarios
	if len(scenarios) == 0 {
		scenarios = []string{""}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	for _, cl := range clusters {
		if cl == "" {
			continue
		}
		if _, err := DescribeCluster(cl); err != nil {
			return nil, err
		}
	}
	for _, sc := range scenarios {
		if sc == "" {
			continue
		}
		if _, err := DescribeScenario(sc); err != nil {
			return nil, err
		}
	}
	specs := make([]SweepSpec, 0, len(policies)*len(clusters)*len(scenarios)*len(seeds))
	for _, policy := range policies {
		for _, cl := range clusters {
			for _, sc := range scenarios {
				for _, seed := range seeds {
					name := policy
					if cl != "" {
						name += "/" + cl
					}
					if sc != "" {
						name += "/" + sc
					}
					name += fmt.Sprintf("/seed=%d", seed)
					opts := make([]Option, 0, len(g.Base)+4)
					opts = append(opts, g.Base...)
					opts = append(opts, WithPolicy(policy), WithSeed(seed))
					if cl != "" {
						opts = append(opts, WithCluster(cl))
					}
					if sc != "" {
						params := g.Params
						params.Seed = seed
						opts = append(opts, WithScenario(sc, params))
					}
					specs = append(specs, SweepSpec{Name: name, Options: opts})
				}
			}
		}
	}
	return specs, nil
}
