package themis

import (
	"context"
	"fmt"

	"themis/internal/experiments"
)

// SweepSpec names one simulation configuration within a sweep: the Options
// are exactly what NewSimulation would receive. Because simulations are
// single-use, each spec is constructed — workload generation included —
// inside its worker, so seeded specs produce identical Reports regardless
// of worker count or scheduling.
type SweepSpec struct {
	// Name labels the run in results and errors (e.g. "themis/f=0.8/seed=42").
	Name string
	// Options configure the run, as in NewSimulation.
	Options []Option
}

// SweepResult pairs one completed sweep run with its spec's name. Results
// are returned in spec order.
type SweepResult struct {
	Name   string
	Report *Report
}

// RunSweep builds and runs one simulation per spec, fanning the grid across
// a bounded worker pool. It is the engine behind the paper's §8 evaluation
// sweeps (many policies × seeds × workloads) and the recommended way to run
// parameter studies against the public API.
//
// workers bounds the pool; zero or negative uses GOMAXPROCS. Results align
// one-to-one with specs irrespective of completion order. The first
// configuration or simulation error cancels the remaining runs and is
// returned with its spec's name; cancelling ctx aborts the sweep, stopping
// in-flight simulations at their next decision point.
func RunSweep(ctx context.Context, workers int, specs []SweepSpec) ([]SweepResult, error) {
	results := make([]SweepResult, len(specs))
	err := experiments.RunGrid(ctx, workers, len(specs), func(ctx context.Context, i int) error {
		spec := specs[i]
		sim, err := NewSimulation(spec.Options...)
		if err != nil {
			return fmt.Errorf("themis: sweep %q: %w", specName(spec, i), err)
		}
		report, err := sim.Run(ctx)
		if err != nil {
			return fmt.Errorf("themis: sweep %q: %w", specName(spec, i), err)
		}
		results[i] = SweepResult{Name: spec.Name, Report: report}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// specName labels a spec in errors, falling back to its index.
func specName(spec SweepSpec, i int) string {
	if spec.Name != "" {
		return spec.Name
	}
	return fmt.Sprintf("spec %d", i)
}
