package themis

import (
	"themis/internal/cluster"
	"themis/internal/core"
	"themis/internal/hyperparam"
	"themis/internal/metrics"
	"themis/internal/placement"
	"themis/internal/sim"
	"themis/internal/topology"
	"themis/internal/trace"
	"themis/internal/workload"
)

// The themis package is a facade: the implementation lives under internal/
// (see DESIGN.md for the module map) and the names below re-export the data
// types that cross the public API boundary. Aliasing rather than wrapping
// keeps the facade zero-cost — a *themis.Topology IS a cluster topology, a
// Report's AppRecord IS the simulator's record — while keeping the internal
// packages free to evolve behind it.
type (
	// Topology is an immutable description of a GPU cluster: machines with
	// GPU counts and slot sizes, grouped into racks.
	Topology = cluster.Topology
	// ClusterConfig declaratively describes a topology to build; call its
	// Build method to obtain a *Topology.
	ClusterConfig = cluster.Config
	// MachineSpec is one homogeneous group of machines in a ClusterConfig.
	MachineSpec = cluster.MachineSpec
	// GPUType names a GPU model in a MachineSpec.
	GPUType = cluster.GPUType
	// Alloc is a set of GPUs, keyed by machine, as granted to an app.
	Alloc = cluster.Alloc

	// TopologySpec declares a hierarchical cluster — regions of named
	// fabric domains of racks of machine groups. Build one into a
	// *Topology with BuildTopology; domain names in the spec are what
	// trace placement blocks and job domain affinities resolve against.
	TopologySpec = topology.Spec
	// RegionSpec is one region of a TopologySpec.
	RegionSpec = topology.RegionSpec
	// DomainSpec is one fabric domain (pod) of a RegionSpec.
	DomainSpec = topology.DomainSpec
	// RackSpec is one rack of a DomainSpec.
	RackSpec = topology.RackSpec
	// MachineGroup is one homogeneous run of machines in a RackSpec.
	MachineGroup = topology.MachineGroup
	// TopologyTree is the indexed hierarchy view over a Topology — regions,
	// domains, per-level capacities and flavor inventories. Obtain one with
	// LiftTopology.
	TopologyTree = topology.Tree

	// App is one ML application: a hyperparameter exploration of one or more
	// gang-scheduled jobs (trials) sharing a placement-sensitivity profile.
	App = workload.App
	// Job is a single trial of an App.
	Job = workload.Job
	// AppID identifies an App.
	AppID = workload.AppID
	// JobID identifies a Job.
	JobID = workload.JobID
	// Profile is a model family's placement-sensitivity profile (how much
	// throughput it loses when its gang is spread across machines or racks).
	Profile = placement.Profile
	// WorkloadSpec parameterises the synthetic workload generator whose
	// distributions match the enterprise trace the paper replays.
	WorkloadSpec = workload.GeneratorConfig
	// WorkloadStats summarises a generated workload's distributions.
	WorkloadStats = workload.Stats
	// ScenarioConfig composes a synthetic scenario: the base generator
	// distributions plus pluggable arrival, job-size and gang-size models.
	// Feed one to ComposeWorkload, or register it as a named scenario via
	// ScenarioFromConfig + RegisterScenario.
	ScenarioConfig = workload.ScenarioConfig
	// ArrivalPattern names a scenario's app arrival process.
	ArrivalPattern = workload.ArrivalPattern
	// SizePattern names a scenario's job-duration law.
	SizePattern = workload.SizePattern
	// GangMix is one weighted entry of a scenario's gang-size population.
	GangMix = workload.GangMix
	// Trace is the serialisable form of a workload, loadable across runs.
	Trace = trace.Trace
	// TraceFormat names an on-disk trace shape ImportTrace understands.
	TraceFormat = trace.Format
	// ImportOptions tune the external-trace importers (time scale, status
	// filtering, app cap, model/placement stamping, progress reporting).
	// Invalid values (negative or non-finite TimeScale, negative MaxApps)
	// fail the import with a typed error.
	ImportOptions = trace.ImportOptions
	// ImportProgress is one streaming-import progress snapshot (rows and
	// bytes consumed, apps retained), delivered to the ImportTraceStream
	// callback.
	ImportProgress = trace.ImportProgress
	// TraceLoadInfo is the wire-level metadata LoadTraceWithInfo reports:
	// the on-disk encoding and the pre-upgrade format version.
	TraceLoadInfo = trace.LoadInfo
	// PlacementSpec is the trace v2 per-app placement block: the
	// placement-sensitivity profile name plus the per-machine GPU floor and
	// machine-spread cap the app's jobs default to. Attach one to an
	// AppSpec (or stamp imports via ImportOptions.Placement) to carry
	// locality constraints on the wire.
	PlacementSpec = trace.PlacementSpec
	// AppSpec is one application entry of a Trace.
	AppSpec = trace.AppSpec
	// JobSpec is one trial entry of an AppSpec.
	JobSpec = trace.JobSpec

	// SchedulerPolicy is the cross-app scheduling discipline the simulator
	// invokes at every decision point. Use Policy to construct a registered
	// implementation by name, or implement it directly — Allocate receives
	// the free GPUs as an Alloc and the cluster/app snapshot as a *View —
	// and plug it in with RegisterPolicy or WithPolicyInstance.
	SchedulerPolicy = sim.Policy
	// View is the policy-facing snapshot a SchedulerPolicy allocates
	// against: the topology, cluster occupancy and every active app's state.
	View = sim.View
	// AppState is one active app's scheduling state inside a View: the app,
	// its tuner, its current allocation and its unmet demand.
	AppState = sim.AppState
	// Tuner is the app-level hyperparameter scheduler (HyperBand etc.) that
	// kills and promotes an app's trials.
	Tuner = hyperparam.Tuner
	// Packer re-materialises policy grants onto concrete GPUs: the policy
	// decides how many GPUs each app gets, the Packer decides which. Select
	// a registered one with WithPacker, or register your own via
	// RegisterPacker.
	Packer = sim.Packer
	// Failure injects a machine failure into a simulation run.
	Failure = sim.Failure

	// Summary is the headline metrics of one run (fairness, JCT, GPU time).
	Summary = metrics.Summary
	// CDF is an empirical cumulative distribution over a run's metric.
	CDF = metrics.CDF
	// AppRecord is the per-app outcome of a run.
	AppRecord = sim.AppRecord
	// AllocationEvent is one point of an app's GPU-allocation timeline.
	AllocationEvent = sim.AllocationEvent
	// FragStats is a run's time-weighted free-pool fragmentation summary
	// (mean free GPUs, largest free blocks per hierarchy level, and the
	// fragmentation score), surfaced as Report.Fragmentation.
	FragStats = sim.FragStats
	// AuctionStats is the Themis arbiter's auction telemetry (§8.3.2).
	AuctionStats = core.ArbiterStats
)

// GPU models used by the built-in cluster topologies.
const (
	GPUTypeK80  = cluster.GPUTypeK80
	GPUTypeM60  = cluster.GPUTypeM60
	GPUTypeP100 = cluster.GPUTypeP100
	GPUTypeV100 = cluster.GPUTypeV100
)

// Arrival processes a ScenarioConfig can compose.
const (
	ArrivalPoisson = workload.ArrivalPoisson
	ArrivalDiurnal = workload.ArrivalDiurnal
	ArrivalBursty  = workload.ArrivalBursty
)

// Job-duration laws a ScenarioConfig can compose.
const (
	SizeLognormal = workload.SizeLognormal
	SizePareto    = workload.SizePareto
)

// Trace formats ImportTrace accepts; TraceFormatAuto sniffs the input.
// TraceFormatBinary is the compact v3 container SaveTraceBinary writes.
const (
	TraceFormatJSON    = trace.FormatJSON
	TraceFormatBinary  = trace.FormatBinary
	TraceFormatPhilly  = trace.FormatPhilly
	TraceFormatAlibaba = trace.FormatAlibaba
	TraceFormatAuto    = trace.FormatAuto
)

// TraceFormatVersion is the current native trace format version (v2: the
// per-app placement block and per-job machine-spread constraint).
// SupportedTraceVersions lists every version ReadTrace can replay; older
// versions upgrade losslessly on read.
const TraceFormatVersion = trace.FormatVersion

// SupportedTraceVersions lists the trace format versions this build replays,
// oldest first.
func SupportedTraceVersions() []int { return trace.SupportedVersions() }

// NotFinished marks an app or job that did not complete within a run's
// horizon (AppRecord.FinishTime and CompletionTime use it).
const NotFinished = workload.NotFinished
