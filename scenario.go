package themis

import (
	"fmt"
	"sort"
	"sync"

	"themis/internal/workload"
)

// ScenarioParams are the runtime knobs a scenario factory receives: the
// sweep- and CLI-facing subset of workload generation (how many apps, which
// seed, how hard the cluster is pressed). Zero-valued fields keep the
// scenario's own defaults, so ScenarioParams{} reproduces the scenario as
// registered.
type ScenarioParams struct {
	// Seed makes generation deterministic; 0 keeps the scenario's default
	// (and under WithScenario inherits the simulation's WithSeed).
	Seed int64
	// NumApps overrides the number of generated applications.
	NumApps int
	// DurationScale scales all task durations (0.2 for the paper's 5×
	// scale-down).
	DurationScale float64
	// ContentionFactor scales the arrival rate, as in the Figure 10 sweep.
	ContentionFactor float64
	// MeanInterArrival overrides the mean inter-arrival time in minutes.
	MeanInterArrival float64
	// NetworkFraction overrides the fraction of network-intensive apps, as
	// in the Figure 9 sweep. A pointer because 0 (all compute-intensive) is
	// a meaningful override; nil keeps the scenario's default.
	NetworkFraction *float64
}

// ScenarioFactory materialises a named scenario's workload. Factories must
// be deterministic in (params.Seed, params): the sweep engine and golden
// tests rely on identical replays.
type ScenarioFactory func(params ScenarioParams) ([]*App, error)

type scenarioEntry struct {
	description string
	factory     ScenarioFactory
	// fit carries the calibration report of scenarios registered through
	// RegisterCalibratedScenario; nil for built-ins and plain registrations.
	fit *FitReport
}

var (
	scenarioMu sync.RWMutex
	scenarios  = map[string]scenarioEntry{}
)

// RegisterScenario adds a named workload scenario to the registry, making it
// available to GenerateScenario, WithScenario, the Grid sweep axis and
// cmd/tracegen. The description is surfaced by DescribeScenario and the
// tracegen list subcommand. Registering a name twice is an error.
func RegisterScenario(name, description string, factory ScenarioFactory) error {
	return registerScenario(name, description, factory, nil)
}

// registerScenario is the shared registration path; fit is non-nil for
// calibrated scenarios (RegisterCalibratedScenario) and surfaces through
// DescribeScenario and ScenarioFit.
func registerScenario(name, description string, factory ScenarioFactory, fit *FitReport) error {
	if name == "" || factory == nil {
		return fmt.Errorf("themis: scenario registration needs a name and a factory")
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarios[name]; dup {
		return fmt.Errorf("themis: scenario %q already registered", name)
	}
	scenarios[name] = scenarioEntry{description: description, factory: factory, fit: fit}
	return nil
}

// Scenarios lists the registered scenario names, sorted.
func Scenarios() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DescribeScenario returns a registered scenario's one-line description.
func DescribeScenario(name string) (string, error) {
	scenarioMu.RLock()
	entry, ok := scenarios[name]
	scenarioMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("themis: unknown scenario %q (registered: %v)", name, Scenarios())
	}
	return entry.description, nil
}

// GenerateScenario materialises a registered scenario's workload: "paper-mix",
// "diurnal", "heavy-tailed", "bursty" or "mixed-gangs" (plus anything added
// via RegisterScenario). The optional params override the scenario's app
// count, seed and load knobs; at most one params value is accepted.
func GenerateScenario(name string, params ...ScenarioParams) ([]*App, error) {
	if len(params) > 1 {
		return nil, fmt.Errorf("themis: GenerateScenario takes at most one params, got %d", len(params))
	}
	var p ScenarioParams
	if len(params) == 1 {
		p = params[0]
	}
	scenarioMu.RLock()
	entry, ok := scenarios[name]
	scenarioMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("themis: unknown scenario %q (registered: %v)", name, Scenarios())
	}
	apps, err := entry.factory(p)
	if err != nil {
		return nil, fmt.Errorf("themis: scenario %q: %w", name, err)
	}
	if len(apps) == 0 {
		return nil, fmt.Errorf("themis: scenario %q produced no apps", name)
	}
	return apps, nil
}

// ComposeWorkload generates a workload from an explicit scenario composition
// (arrival pattern × job-size law × gang mix), without going through the
// registry. Zero-valued knobs keep the paper's behaviour, as in
// GenerateWorkload.
func ComposeWorkload(cfg ScenarioConfig) ([]*App, error) {
	return workload.GenerateScenario(cfg)
}

// ScenarioFromConfig wraps a scenario composition as a registrable factory,
// applying ScenarioParams on top of the config:
//
//	cfg := themis.ScenarioConfig{GeneratorConfig: themis.DefaultWorkloadSpec()}
//	cfg.Arrival = themis.ArrivalDiurnal
//	themis.RegisterScenario("my-diurnal", "diurnal variant", themis.ScenarioFromConfig(cfg))
func ScenarioFromConfig(cfg ScenarioConfig) ScenarioFactory {
	return func(p ScenarioParams) ([]*App, error) {
		c := cfg
		if p.Seed != 0 {
			c.Seed = p.Seed
		}
		if p.NumApps != 0 {
			c.NumApps = p.NumApps
		}
		if p.DurationScale != 0 {
			c.DurationScale = p.DurationScale
		}
		if p.ContentionFactor != 0 {
			c.ContentionFactor = p.ContentionFactor
		}
		if p.MeanInterArrival != 0 {
			c.MeanInterArrival = p.MeanInterArrival
		}
		if p.NetworkFraction != nil {
			c.FractionNetworkIntensive = *p.NetworkFraction
		}
		return workload.GenerateScenario(c)
	}
}

// The built-in scenario library ships pre-registered: the paper's synthetic
// mix plus the workload families production traces exhibit.
func init() {
	mustRegister := func(name, description string, cfg ScenarioConfig) {
		if err := RegisterScenario(name, description, ScenarioFromConfig(cfg)); err != nil {
			panic(err)
		}
	}
	base := func() ScenarioConfig {
		return ScenarioConfig{GeneratorConfig: workload.DefaultGeneratorConfig()}
	}

	mustRegister("paper-mix",
		"the paper's §8.1 synthetic mix: Poisson arrivals, lognormal durations, 2/4-GPU gangs",
		base())

	diurnal := base()
	diurnal.Arrival = ArrivalDiurnal
	mustRegister("diurnal",
		"paper mix under a day-night arrival cycle (sinusoidal rate, 4:1 peak-to-trough)",
		diurnal)

	heavy := base()
	heavy.JobSize = SizePareto
	mustRegister("heavy-tailed",
		"paper mix with Pareto(α=1.5) task durations: mice jobs plus elephant stragglers",
		heavy)

	bursty := base()
	bursty.Arrival = ArrivalBursty
	mustRegister("bursty",
		"paper mix with half the apps arriving in near-simultaneous load spikes",
		bursty)

	gangs := base()
	gangs.GangSizes = []GangMix{{Size: 1, Weight: 2}, {Size: 2, Weight: 3}, {Size: 4, Weight: 4}, {Size: 8, Weight: 1}}
	mustRegister("mixed-gangs",
		"paper mix over a 1/2/4/8-GPU gang-size population stressing the packing path",
		gangs)
}
