package themis

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func sweepTestSpecs() []SweepSpec {
	spec := DefaultWorkloadSpec()
	spec.NumApps = 5
	spec.JobsPerAppMedian = 3
	spec.MaxJobsPerApp = 6
	spec.MeanInterArrival = 5
	spec.DurationScale = 0.2
	var specs []SweepSpec
	for _, policy := range []string{"themis", "gandiva", "tiresias"} {
		specs = append(specs, SweepSpec{
			Name: policy,
			Options: []Option{
				WithCluster(ClusterTestbed),
				WithWorkload(spec),
				WithPolicy(policy),
				WithSeed(11),
				WithHorizon(20000),
			},
		})
	}
	return specs
}

func TestRunSweepAlignsResultsWithSpecs(t *testing.T) {
	results, err := RunSweep(context.Background(), 3, sweepTestSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, want := range []string{"themis", "gandiva", "tiresias"} {
		if results[i].Name != want {
			t.Errorf("result %d named %q, want %q", i, results[i].Name, want)
		}
		if results[i].Report == nil || results[i].Report.Summary.Policy != want {
			t.Errorf("result %d carries report for %v, want %s", i, results[i].Report, want)
		}
	}
	// A themis run must surface auction telemetry; baselines must not.
	if results[0].Report.Auction == nil {
		t.Error("themis sweep result lacks auction stats")
	}
	if results[1].Report.Auction != nil {
		t.Error("gandiva sweep result carries auction stats")
	}
}

// TestRunSweepMatchesSequentialRuns pins the engine's determinism: a pooled
// sweep must produce byte-identical reports to building and running each
// simulation sequentially.
func TestRunSweepMatchesSequentialRuns(t *testing.T) {
	parallel, err := RunSweep(context.Background(), 8, sweepTestSpecs())
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range sweepTestSpecs() {
		sim, err := NewSimulation(spec.Options...)
		if err != nil {
			t.Fatal(err)
		}
		sequential, err := sim.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel[i].Report.Apps, sequential.Apps) {
			t.Errorf("spec %s: pooled report differs from sequential run", spec.Name)
		}
		if parallel[i].Report.Summary != sequential.Summary {
			t.Errorf("spec %s: summaries differ", spec.Name)
		}
	}
}

func TestRunSweepSurfacesSpecErrors(t *testing.T) {
	specs := sweepTestSpecs()
	specs[1].Options = append(specs[1].Options, WithPolicy("no-such-policy"))
	_, err := RunSweep(context.Background(), 2, specs)
	if err == nil {
		t.Fatal("sweep with an invalid spec returned nil error")
	}
	if !strings.Contains(err.Error(), specs[1].Name) {
		t.Errorf("err = %q, want it to name the failing spec %q", err, specs[1].Name)
	}
}

func TestRunSweepHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSweep(ctx, 2, sweepTestSpecs()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunSweepEmpty(t *testing.T) {
	results, err := RunSweep(context.Background(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results for an empty sweep", len(results))
	}
}
